package par

import (
	"errors"
	"sync/atomic"
	"testing"
)

// covers asserts a pool still executes a full parallel-for correctly —
// the invariant every pinning degradation path must preserve.
func covers(t *testing.T, p *Pool, n int) {
	t.Helper()
	seen := make([]atomic.Int32, n)
	p.ForSticky(n, func(i, _ int) { seen[i].Add(1) })
	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Fatalf("iteration %d ran %d times", i, got)
		}
	}
}

// SetPinned either pins every worker or records why it could not; in
// both cases the pool keeps working.
func TestSetPinnedPinsOrRecords(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	err := p.SetPinned(true)
	switch {
	case !AffinitySupported():
		if !errors.Is(err, errAffinityUnsupported) {
			t.Fatalf("unsupported platform returned %v", err)
		}
		if p.PinError() == nil || p.PinnedWorkers() != 0 || p.Pinned() {
			t.Fatal("unsupported platform left pinning state inconsistent")
		}
	case err != nil:
		// Supported platform but the environment (cgroup) refused:
		// degraded, with the cause recorded.
		if p.PinError() == nil {
			t.Fatal("SetPinned failed without recording PinError")
		}
	default:
		if got := p.PinnedWorkers(); got != 2 {
			t.Fatalf("PinnedWorkers = %d, want 2", got)
		}
		for w, cpu := range p.Placement() {
			if cpu < 0 {
				t.Fatalf("worker %d unplaced after successful pin", w)
			}
		}
	}
	covers(t, p, 300)

	if err := p.SetPinned(false); err != nil {
		t.Fatalf("SetPinned(false) = %v", err)
	}
	if p.Pinned() || p.PinnedWorkers() != 0 {
		t.Fatal("unpin left workers placed")
	}
	for w, cpu := range p.Placement() {
		if cpu != -1 {
			t.Fatalf("worker %d placement %d after unpin, want -1", w, cpu)
		}
	}
	covers(t, p, 300)
}

// An EPERM-style refusal from the kernel (restricted cgroups deny
// sched_setaffinity) must degrade to unpinned execution: error
// reported, PinError recorded, Pinned() back to false so the serial
// fast path returns, and the pool fully correct.
func TestSetPinnedKernelRefusalDegrades(t *testing.T) {
	if !AffinitySupported() {
		t.Skip("affinity stub platform: injection point unreachable")
	}
	eperm := errors.New("sched_setaffinity: operation not permitted")
	saved := setThreadAffinity
	setThreadAffinity = func(cpu int) error { return eperm }
	defer func() { setThreadAffinity = saved }()

	p := NewPool(3)
	defer p.Close()
	err := p.SetPinned(true)
	if !errors.Is(err, eperm) {
		t.Fatalf("SetPinned = %v, want injected EPERM", err)
	}
	if !errors.Is(p.PinError(), eperm) {
		t.Fatalf("PinError = %v, want injected EPERM", p.PinError())
	}
	if p.Pinned() {
		t.Fatal("fully-refused pin left Pinned() true")
	}
	if got := p.PinnedWorkers(); got != 0 {
		t.Fatalf("PinnedWorkers = %d after full refusal", got)
	}
	covers(t, p, 300)
}

// NewPoolOpts{Pin: true} must never fail construction, whatever the
// platform says; ForSticky with every knob on stays correct, including
// the single-worker pool where pinning disables the inline fast path.
func TestNewPoolOptsPinnedConstruction(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPoolOpts(workers, PoolOptions{Pin: true, Sticky: true})
		if p.Workers() != workers {
			t.Fatalf("Workers = %d, want %d", p.Workers(), workers)
		}
		covers(t, p, 200)
		covers(t, p, 1) // n=1 with pinning on: must dispatch, not inline
		p.Close()
	}
}

// An explicit CPU list is honoured (round-robin) when pinning works.
func TestPoolOptionsExplicitCPUs(t *testing.T) {
	if !AffinitySupported() {
		t.Skip("no affinity on this platform")
	}
	allowed, err := allowedCPUs()
	if err != nil || len(allowed) == 0 {
		t.Skipf("allowedCPUs: %v", err)
	}
	p := NewPoolOpts(3, PoolOptions{Pin: true, CPUs: allowed[:1]})
	defer p.Close()
	if p.PinError() != nil {
		t.Skipf("environment refuses pinning: %v", p.PinError())
	}
	for w, cpu := range p.Placement() {
		if cpu != allowed[0] {
			t.Fatalf("worker %d on cpu %d, want %d", w, cpu, allowed[0])
		}
	}
	covers(t, p, 300)
}
