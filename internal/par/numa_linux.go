//go:build linux

package par

import (
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// numaSysfsRoot is the topology directory; a variable so tests can
// point it at a fixture tree.
var numaSysfsRoot = "/sys/devices/system/node"

// numaNodeCPUs reads the per-node CPU lists from sysfs, ordered by
// node id. Any error (no sysfs, restricted container, malformed
// files) yields nil and the caller falls back to the raw allowed
// order.
func numaNodeCPUs() [][]int {
	entries, err := os.ReadDir(numaSysfsRoot)
	if err != nil {
		return nil
	}
	var ids []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "node") {
			continue
		}
		id, err := strconv.Atoi(name[len("node"):])
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var nodes [][]int
	for _, id := range ids {
		b, err := os.ReadFile(filepath.Join(numaSysfsRoot, "node"+strconv.Itoa(id), "cpulist"))
		if err != nil {
			continue
		}
		if cpus := parseCPUList(string(b)); len(cpus) > 0 {
			nodes = append(nodes, cpus)
		}
	}
	return nodes
}
