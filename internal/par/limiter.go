package par

import "sync"

// Limiter bounds the parallelism of recursive divide-and-conquer
// algorithms (the cache-oblivious trapezoid walker): forks run in new
// goroutines while tokens are available and inline otherwise, the same
// discipline a Cilk-style runtime applies.
type Limiter struct {
	sem chan struct{}
}

// NewLimiter returns a limiter allowing up to n-1 extra concurrent
// forks (so total parallelism is n). n < 2 yields a purely serial
// limiter.
func NewLimiter(n int) *Limiter {
	if n < 1 {
		n = 1
	}
	return &Limiter{sem: make(chan struct{}, n-1)}
}

// Par runs all fns and returns when every one of them has completed.
// Each fn after the first is forked into a goroutine if a token is
// available, otherwise it runs inline; the first always runs inline.
func (l *Limiter) Par(fns ...func()) {
	if len(fns) == 0 {
		return
	}
	var wg sync.WaitGroup
	for _, fn := range fns[1:] {
		select {
		case l.sem <- struct{}{}:
			wg.Add(1)
			go func(fn func()) {
				defer wg.Done()
				defer func() { <-l.sem }()
				fn()
			}(fn)
		default:
			fn()
		}
	}
	fns[0]()
	wg.Wait()
}
