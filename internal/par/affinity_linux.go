//go:build linux

package par

import (
	"fmt"
	"syscall"
	"unsafe"
)

// Thread affinity via raw sched_{get,set}affinity syscalls: the
// syscall package exposes the syscall numbers on linux, so no cgo and
// no external dependency is needed. pid 0 addresses the calling
// thread, which is why callers must hold runtime.LockOSThread before
// pinning — otherwise the Go scheduler may migrate the goroutine off
// the thread whose mask was just set.

// cpuMask is a linux cpu_set_t sized for 1024 CPUs (the kernel copies
// min(len, its own mask size), so oversizing is harmless).
type cpuMask [16]uint64

func (m *cpuMask) set(cpu int) {
	if cpu < 0 || cpu >= len(m)*64 {
		return
	}
	m[cpu/64] |= 1 << (uint(cpu) % 64)
}

func (m *cpuMask) isSet(cpu int) bool {
	return m[cpu/64]&(1<<(uint(cpu)%64)) != 0
}

func affinitySupported() bool { return true }

// allowedCPUs returns the CPUs the calling thread may run on, in
// ascending order. This is the cgroup/taskset-visible set, not the
// machine's full topology, so pinning respects container CPU limits.
func allowedCPUs() ([]int, error) {
	var m cpuMask
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_GETAFFINITY,
		0, uintptr(unsafe.Sizeof(m)), uintptr(unsafe.Pointer(&m)))
	if errno != 0 {
		return nil, fmt.Errorf("sched_getaffinity: %w", errno)
	}
	var cpus []int
	for c := 0; c < len(m)*64; c++ {
		if m.isSet(c) {
			cpus = append(cpus, c)
		}
	}
	return cpus, nil
}

func setAffinityMask(m *cpuMask) error {
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, uintptr(unsafe.Sizeof(*m)), uintptr(unsafe.Pointer(m)))
	if errno != 0 {
		return fmt.Errorf("sched_setaffinity: %w", errno)
	}
	return nil
}

// setThreadAffinity pins the calling OS thread to a single CPU. A
// package variable so degradation tests can inject EPERM (restricted
// cgroups deny sched_setaffinity even for a process's own threads).
var setThreadAffinity = func(cpu int) error {
	var m cpuMask
	m.set(cpu)
	return setAffinityMask(&m)
}

// resetThreadAffinity restores the calling thread's mask to the given
// CPU set (normally the allowed set captured before pinning).
var resetThreadAffinity = func(cpus []int) error {
	var m cpuMask
	for _, c := range cpus {
		m.set(c)
	}
	return setAffinityMask(&m)
}
