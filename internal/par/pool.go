// Package par provides the small parallel runtime used by every stencil
// scheme in this repository: a reusable worker pool, a chunked
// parallel-for, and a pipelined wavefront synchronizer.
//
// The pool plays the role OpenMP's "parallel for" plays in the paper's
// reference implementation: all blocks of one tessellation stage are
// independent, so a stage is exactly one Pool.For call.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tessellate/internal/telemetry"
)

// Pool is a fixed-size worker pool. A Pool is reused across many For
// calls so that per-stage parallelism does not pay goroutine startup
// costs on every synchronization, mirroring a persistent OpenMP team.
//
// The zero value is not usable; construct with NewPool.
type Pool struct {
	workers int
	jobs    chan func(worker int)
	wg      sync.WaitGroup
	closed  atomic.Bool
	// panicked holds the first panic captured from a job of the
	// in-flight For/ForChunked call; the caller re-raises it after all
	// runners finish. For is single-caller (it shares wg), so one slot
	// suffices.
	panicked atomic.Pointer[capturedPanic]
}

// capturedPanic boxes a recovered panic value so it can live in an
// atomic.Pointer.
type capturedPanic struct{ val any }

// NewPool creates a pool with the given number of workers. If workers
// is <= 0, runtime.GOMAXPROCS(0) is used. The pool's goroutines run
// until Close is called.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: workers,
		jobs:    make(chan func(worker int)),
	}
	for w := 0; w < workers; w++ {
		go func(w int) {
			for job := range p.jobs {
				p.runJob(job, w)
			}
		}(w)
	}
	return p
}

// runJob executes one job, guaranteeing the WaitGroup decrement and
// capturing (instead of propagating) a panicking job: an unrecovered
// panic would kill the worker goroutine — permanently shrinking the
// pool — and leave For deadlocked on wg.Wait. The first captured panic
// is re-raised from the For caller once all runners finish.
func (p *Pool) runJob(job func(worker int), w int) {
	defer p.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			p.panicked.CompareAndSwap(nil, &capturedPanic{val: r})
		}
	}()
	job(w)
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return p.workers }

// Close shuts the pool down. It must not be called concurrently with
// For. Close is idempotent.
func (p *Pool) Close() {
	if p.closed.CompareAndSwap(false, true) {
		close(p.jobs)
	}
}

// For executes body(i) for every i in [0, n), distributing iterations
// over the pool with dynamic chunked self-scheduling, and returns when
// all iterations have completed. It is the moral equivalent of
// "#pragma omp parallel for schedule(dynamic, chunk)".
//
// The chunk size adapts to n so that small stages do not pay excessive
// atomic traffic and large stages still balance load.
func (p *Pool) For(n int, body func(i int)) {
	p.ForChunked(n, 0, body)
}

// ForChunked is For with an explicit chunk size; chunk <= 0 selects an
// automatic size of max(1, n/(8*workers)).
func (p *Pool) ForChunked(n, chunk int, body func(i int)) {
	if n <= 0 {
		return
	}
	// Telemetry is sampled once per region; traced is false in the
	// common disabled case and the guards below cost one branch each.
	traced := telemetry.Enabled()
	var t0 time.Time
	if traced {
		t0 = time.Now()
		telemetry.PoolForSize.Observe(float64(n))
	}
	// Serial fast path: a single worker (or tiny trip count) should not
	// bounce through channels at all.
	if p.workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		if traced {
			telemetry.PoolForSeconds.Observe(time.Since(t0).Seconds())
		}
		return
	}
	if chunk <= 0 {
		chunk = n / (8 * p.workers)
		if chunk < 1 {
			chunk = 1
		}
	}
	var next atomic.Int64
	runners := p.workers
	if runners > n {
		runners = n
	}
	p.panicked.Store(nil)
	p.wg.Add(runners)
	for w := 0; w < runners; w++ {
		p.jobs <- func(int) {
			if traced {
				// Both halves bypass the enabled gate: the pair was
				// admitted by the traced sample above, and gating the
				// decrement would drift the gauge permanently if
				// telemetry were toggled off mid-region.
				telemetry.PoolWorkersBusy.AddUngated(1)
				defer telemetry.PoolWorkersBusy.AddUngated(-1)
			}
			for p.panicked.Load() == nil {
				start := int(next.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					body(i)
				}
			}
		}
	}
	if traced {
		// All runners are in workers' hands: the dispatch latency.
		telemetry.PoolDispatchSeconds.Observe(time.Since(t0).Seconds())
	}
	p.wg.Wait()
	if traced {
		telemetry.PoolForSeconds.Observe(time.Since(t0).Seconds())
	}
	if pv := p.panicked.Load(); pv != nil {
		panic(pv.val)
	}
}

// Run executes fn(w) once for each worker id w in [0, Workers())
// concurrently and waits for all of them. Unlike For, Run guarantees
// every id runs exactly once, so callers can pin per-lane state to ids
// (e.g. the pipelined wavefront baseline). It uses fresh goroutines
// rather than the job queue: pool workers grab jobs competitively, so
// the queue cannot guarantee distinct-id coverage.
// A panicking fn does not kill its goroutine unrecovered (which would
// crash the process): the first panic is captured and re-raised from
// the Run caller after every lane has finished.
func (p *Pool) Run(fn func(worker int)) {
	if p.workers == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	var first atomic.Pointer[capturedPanic]
	wg.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					first.CompareAndSwap(nil, &capturedPanic{val: r})
				}
			}()
			fn(w)
		}(w)
	}
	wg.Wait()
	if pv := first.Load(); pv != nil {
		panic(pv.val)
	}
}
