// Package par provides the small parallel runtime used by every stencil
// scheme in this repository: a reusable worker pool, a chunked
// parallel-for, and a pipelined wavefront synchronizer.
//
// The pool plays the role OpenMP's "parallel for" plays in the paper's
// reference implementation: all blocks of one tessellation stage are
// independent, so a stage is exactly one Pool.For call.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tessellate/internal/telemetry"
)

// Pool is a fixed-size worker pool. A Pool is reused across many For
// calls so that per-stage parallelism does not pay goroutine startup
// costs on every synchronization, mirroring a persistent OpenMP team.
//
// The zero value is not usable; construct with NewPool.
type Pool struct {
	workers int
	jobs    chan func(worker int)
	wg      sync.WaitGroup
	closed  atomic.Bool
}

// NewPool creates a pool with the given number of workers. If workers
// is <= 0, runtime.GOMAXPROCS(0) is used. The pool's goroutines run
// until Close is called.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: workers,
		jobs:    make(chan func(worker int)),
	}
	for w := 0; w < workers; w++ {
		go func(w int) {
			for job := range p.jobs {
				job(w)
				p.wg.Done()
			}
		}(w)
	}
	return p
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return p.workers }

// Close shuts the pool down. It must not be called concurrently with
// For. Close is idempotent.
func (p *Pool) Close() {
	if p.closed.CompareAndSwap(false, true) {
		close(p.jobs)
	}
}

// For executes body(i) for every i in [0, n), distributing iterations
// over the pool with dynamic chunked self-scheduling, and returns when
// all iterations have completed. It is the moral equivalent of
// "#pragma omp parallel for schedule(dynamic, chunk)".
//
// The chunk size adapts to n so that small stages do not pay excessive
// atomic traffic and large stages still balance load.
func (p *Pool) For(n int, body func(i int)) {
	p.ForChunked(n, 0, body)
}

// ForChunked is For with an explicit chunk size; chunk <= 0 selects an
// automatic size of max(1, n/(8*workers)).
func (p *Pool) ForChunked(n, chunk int, body func(i int)) {
	if n <= 0 {
		return
	}
	// Telemetry is sampled once per region; traced is false in the
	// common disabled case and the guards below cost one branch each.
	traced := telemetry.Enabled()
	var t0 time.Time
	if traced {
		t0 = time.Now()
		telemetry.PoolForSize.Observe(float64(n))
	}
	// Serial fast path: a single worker (or tiny trip count) should not
	// bounce through channels at all.
	if p.workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		if traced {
			telemetry.PoolForSeconds.Observe(time.Since(t0).Seconds())
		}
		return
	}
	if chunk <= 0 {
		chunk = n / (8 * p.workers)
		if chunk < 1 {
			chunk = 1
		}
	}
	var next atomic.Int64
	runners := p.workers
	if runners > n {
		runners = n
	}
	p.wg.Add(runners)
	for w := 0; w < runners; w++ {
		p.jobs <- func(int) {
			if traced {
				telemetry.PoolWorkersBusy.Add(1)
				defer telemetry.PoolWorkersBusy.Add(-1)
			}
			for {
				start := int(next.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					body(i)
				}
			}
		}
	}
	if traced {
		// All runners are in workers' hands: the dispatch latency.
		telemetry.PoolDispatchSeconds.Observe(time.Since(t0).Seconds())
	}
	p.wg.Wait()
	if traced {
		telemetry.PoolForSeconds.Observe(time.Since(t0).Seconds())
	}
}

// Run executes fn(w) once for each worker id w in [0, Workers())
// concurrently and waits for all of them. Unlike For, Run guarantees
// every id runs exactly once, so callers can pin per-lane state to ids
// (e.g. the pipelined wavefront baseline). It uses fresh goroutines
// rather than the job queue: pool workers grab jobs competitively, so
// the queue cannot guarantee distinct-id coverage.
func (p *Pool) Run(fn func(worker int)) {
	if p.workers == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}
