// Package par provides the small parallel runtime used by every stencil
// scheme in this repository: a reusable worker pool with dynamic and
// sticky (topology-aware) scheduling, optional CPU pinning, and a
// pipelined wavefront synchronizer.
//
// The pool plays the role OpenMP's "parallel for" plays in the paper's
// reference implementation: all blocks of one tessellation stage are
// independent, so a stage is exactly one parallel-for call. Dynamic
// mode ("schedule(dynamic, chunk)") self-schedules chunks off a shared
// cursor; sticky mode gives every worker the same static index range
// in every region — so the blocks a worker touched last stage are the
// blocks it touches next stage, keeping their working set in that
// core's cache — with steal-from-the-back to cover tail imbalance.
package par

import (
	"math"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tessellate/internal/telemetry"
)

// Pool is a fixed-size worker pool. A Pool is reused across many For
// calls so that per-stage parallelism does not pay goroutine startup
// costs on every synchronization, mirroring a persistent OpenMP team.
//
// The zero value is not usable; construct with NewPool or NewPoolOpts.
type Pool struct {
	workers int
	jobs    chan func(worker int)
	wg      sync.WaitGroup
	closed  atomic.Bool
	// panicked holds the first panic captured from a job of the
	// in-flight For/ForChunked/ForSticky call; the caller re-raises it
	// after all runners finish. For is single-caller (it shares wg), so
	// one slot suffices.
	panicked atomic.Pointer[capturedPanic]

	// Sticky scheduling: one deque per worker, reloaded each region.
	sticky atomic.Bool
	queues []stickyQueue

	// CPU pinning. placement[w] is the core worker w is pinned to (-1
	// while unpinned); locked[w] tracks LockOSThread and is only ever
	// touched from worker w's own goroutine (via broadcast), so it
	// needs no synchronization.
	pinOn     atomic.Bool
	pinCPUs   []int // explicit core list from PoolOptions; nil = allowed set
	placement []atomic.Int64
	locked    []bool
	pinErr    atomic.Pointer[pinFailure]
}

// capturedPanic boxes a recovered panic value so it can live in an
// atomic.Pointer.
type capturedPanic struct{ val any }

// pinFailure boxes a pinning error for the same reason.
type pinFailure struct{ err error }

// PoolOptions selects the pool's scheduling and placement behaviour.
// The zero value reproduces the classic dynamic, unpinned pool.
type PoolOptions struct {
	// Pin requests that each worker be pinned to its own CPU core at
	// construction. Pinning that fails (non-linux platform, EPERM in a
	// restricted cgroup) degrades to unpinned execution; the cause is
	// recorded in PinError, never returned as a construction failure.
	Pin bool
	// CPUs optionally lists the cores to pin to; worker w gets
	// CPUs[w%len(CPUs)]. Empty means the thread's allowed set (which
	// respects taskset/cgroup limits), interleaved across NUMA nodes
	// when /sys/devices/system/node is readable so small pools still
	// use every memory controller, assigned round-robin.
	CPUs []int
	// Sticky starts the pool with sticky scheduling enabled for
	// ForSticky regions (toggleable later with SetSticky).
	Sticky bool
}

// NewPool creates a dynamic, unpinned pool with the given number of
// workers. If workers is <= 0, runtime.GOMAXPROCS(0) is used. The
// pool's goroutines run until Close is called.
func NewPool(workers int) *Pool { return NewPoolOpts(workers, PoolOptions{}) }

// NewPoolOpts creates a pool with explicit scheduling and placement
// options.
func NewPoolOpts(workers int, opts PoolOptions) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers:   workers,
		jobs:      make(chan func(worker int)),
		queues:    make([]stickyQueue, workers),
		placement: make([]atomic.Int64, workers),
		locked:    make([]bool, workers),
		pinCPUs:   append([]int(nil), opts.CPUs...),
	}
	for w := range p.placement {
		p.placement[w].Store(-1)
	}
	for w := 0; w < workers; w++ {
		go p.workerLoop(w)
	}
	p.sticky.Store(opts.Sticky)
	if opts.Pin {
		p.SetPinned(true) // failure is recorded in PinError, not fatal
	}
	return p
}

func (p *Pool) workerLoop(w int) {
	for job := range p.jobs {
		p.runJob(job, w)
	}
}

// runJob executes one job, guaranteeing the WaitGroup decrement and
// capturing (instead of propagating) a panicking job: an unrecovered
// panic would kill the worker goroutine — permanently shrinking the
// pool — and leave For deadlocked on wg.Wait. The first captured panic
// is re-raised from the For caller once all runners finish.
func (p *Pool) runJob(job func(worker int), w int) {
	defer p.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			p.panicked.CompareAndSwap(nil, &capturedPanic{val: r})
		}
	}()
	job(w)
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return p.workers }

// Close shuts the pool down. It must not be called concurrently with
// For. Close is idempotent.
func (p *Pool) Close() {
	if p.closed.CompareAndSwap(false, true) {
		close(p.jobs)
	}
}

// broadcast runs fn(w) exactly once on every worker's own goroutine
// and waits for all of them. Workers grab jobs competitively, so a
// plain send of W jobs could hand two to the same worker; here each
// job parks on a gate until all W jobs are held — and with only W
// workers, W held jobs means W distinct holders. Must not be called
// concurrently with For (it shares the pool's WaitGroup).
func (p *Pool) broadcast(fn func(worker int)) {
	var gate sync.WaitGroup
	gate.Add(p.workers)
	p.panicked.Store(nil)
	p.wg.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		p.jobs <- func(self int) {
			gate.Done()
			gate.Wait()
			fn(self)
		}
	}
	p.wg.Wait()
	if pv := p.panicked.Load(); pv != nil {
		panic(pv.val)
	}
}

// SetSticky toggles sticky scheduling for subsequent ForSticky calls.
// Must not be called concurrently with an in-flight For.
func (p *Pool) SetSticky(on bool) { p.sticky.Store(on) }

// StickyEnabled reports whether ForSticky uses the static mapping.
func (p *Pool) StickyEnabled() bool { return p.sticky.Load() }

// Pinned reports whether pinning is currently requested (it may still
// have failed on every worker; see PinnedWorkers and PinError).
func (p *Pool) Pinned() bool { return p.pinOn.Load() }

// PinnedWorkers reports how many workers are pinned to a core.
func (p *Pool) PinnedWorkers() int {
	n := 0
	for w := range p.placement {
		if p.placement[w].Load() >= 0 {
			n++
		}
	}
	return n
}

// Placement returns each worker's pinned CPU core, -1 where unpinned.
func (p *Pool) Placement() []int {
	out := make([]int, p.workers)
	for w := range out {
		out[w] = int(p.placement[w].Load())
	}
	return out
}

// PinError returns the first pinning failure observed (nil if none).
// A non-nil PinError with PinnedWorkers()==0 means pinning degraded to
// a no-op, e.g. on a non-linux platform or under a cgroup that denies
// sched_setaffinity.
func (p *Pool) PinError() error {
	if pf := p.pinErr.Load(); pf != nil {
		return pf.err
	}
	return nil
}

// SetPinned pins (on=true) or unpins every pool worker to its own CPU
// core, chosen from PoolOptions.CPUs or the thread's allowed set. The
// returned error reports why pinning is unavailable or incomplete;
// execution always continues correctly either way (failed workers just
// run unpinned). Must not be called concurrently with For.
func (p *Pool) SetPinned(on bool) error {
	if !on {
		if !p.pinOn.Swap(false) {
			return nil
		}
		if affinitySupported() {
			allowed, _ := allowedCPUs()
			p.broadcast(func(w int) { p.unpinWorker(w, allowed) })
		}
		telemetry.PoolWorkersPinned.SetUngated(0)
		return nil
	}
	if !affinitySupported() {
		p.pinErr.CompareAndSwap(nil, &pinFailure{err: errAffinityUnsupported})
		return errAffinityUnsupported
	}
	cpus := p.pinCPUs
	if len(cpus) == 0 {
		allowed, err := allowedCPUs()
		if err != nil {
			p.pinErr.CompareAndSwap(nil, &pinFailure{err: err})
			return err
		}
		// Default order: interleave the allowed CPUs across NUMA nodes
		// so any worker count spreads over all memory controllers (a
		// no-op reorder on single-node machines or without sysfs).
		cpus = numaInterleaved(allowed)
	}
	if len(cpus) == 0 {
		p.pinErr.CompareAndSwap(nil, &pinFailure{err: errAffinityUnsupported})
		return errAffinityUnsupported
	}
	p.pinOn.Store(true)
	p.broadcast(func(w int) { p.pinWorker(w, cpus[w%len(cpus)]) })
	pinned := p.PinnedWorkers()
	telemetry.PoolWorkersPinned.SetUngated(float64(pinned))
	if pinned == 0 {
		// Every worker was refused: degrade fully so the serial fast
		// path comes back and PinError carries the cause.
		p.pinOn.Store(false)
	}
	if pinned < p.workers {
		return p.PinError()
	}
	return nil
}

// pinWorker runs on worker w's own goroutine (via broadcast).
func (p *Pool) pinWorker(w, cpu int) {
	if !p.locked[w] {
		// The affinity mask applies to the OS thread; the goroutine
		// must stay on it or the mask pins the wrong code.
		runtime.LockOSThread()
		p.locked[w] = true
	}
	if err := setThreadAffinity(cpu); err != nil {
		p.pinErr.CompareAndSwap(nil, &pinFailure{err: err})
		p.placement[w].Store(-1)
		telemetry.PoolWorkerCPU.Gauge(strconv.Itoa(w)).SetUngated(-1)
		return
	}
	p.placement[w].Store(int64(cpu))
	telemetry.PoolWorkerCPU.Gauge(strconv.Itoa(w)).SetUngated(float64(cpu))
}

// unpinWorker runs on worker w's own goroutine (via broadcast).
func (p *Pool) unpinWorker(w int, allowed []int) {
	if len(allowed) > 0 {
		resetThreadAffinity(allowed)
	}
	if p.locked[w] {
		runtime.UnlockOSThread()
		p.locked[w] = false
	}
	p.placement[w].Store(-1)
	telemetry.PoolWorkerCPU.Gauge(strconv.Itoa(w)).SetUngated(-1)
}

// For executes body(i) for every i in [0, n), distributing iterations
// over the pool with dynamic chunked self-scheduling, and returns when
// all iterations have completed. It is the moral equivalent of
// "#pragma omp parallel for schedule(dynamic, chunk)".
func (p *Pool) For(n int, body func(i int)) {
	p.ForChunked(n, 0, body)
}

// ForChunked is For with an explicit chunk size; chunk <= 0 selects an
// automatic size (see dispatchDynamic).
func (p *Pool) ForChunked(n, chunk int, body func(i int)) {
	p.parFor(n, chunk, false, func(i, _ int) { body(i) })
}

// ForSticky executes body(i, worker) for every i in [0, n), where
// worker is the id of the pool worker running that iteration (0 on the
// inline fast path). With sticky mode on, worker w owns the static
// range [w*n/W, (w+1)*n/W) — identical across regions of the same n,
// so block data stays in the core that touched it last region — and
// idle workers steal from the back of other queues to cover tail
// imbalance. With sticky mode off it behaves like For.
//
// The worker id makes per-worker state (sharded telemetry counters,
// first-touch page placement) addressable from the body.
func (p *Pool) ForSticky(n int, body func(i, worker int)) {
	p.parFor(n, 0, p.sticky.Load(), body)
}

// parFor is the shared front of For/ForChunked/ForSticky: telemetry
// sampling, the serial fast path, and mode selection.
func (p *Pool) parFor(n, chunk int, sticky bool, body func(i, worker int)) {
	if n <= 0 {
		return
	}
	// Telemetry is sampled once per region; traced is false in the
	// common disabled case and the guards below cost one branch each.
	traced := telemetry.Enabled()
	var t0 time.Time
	if traced {
		t0 = time.Now()
		telemetry.PoolForSize.Observe(float64(n))
	}
	// Serial fast path: a single worker (or tiny trip count) should not
	// bounce through channels at all — unless workers are pinned, in
	// which case running inline on the caller's unpinned goroutine
	// would silently defeat placement.
	if (p.workers == 1 || n == 1) && !p.pinOn.Load() {
		for i := 0; i < n; i++ {
			body(i, 0)
		}
		if traced {
			telemetry.PoolForSeconds.Observe(time.Since(t0).Seconds())
		}
		return
	}
	if sticky && n <= math.MaxInt32 {
		p.dispatchSticky(n, traced, t0, body)
	} else {
		p.dispatchDynamic(n, chunk, traced, t0, body)
	}
	if traced {
		telemetry.PoolForSeconds.Observe(time.Since(t0).Seconds())
	}
	if pv := p.panicked.Load(); pv != nil {
		panic(pv.val)
	}
}

// dispatchDynamic runs the region with chunked self-scheduling off a
// shared cursor. chunk <= 0 selects an automatic size of
// max(1, n/(8*runners)) — eight chunks per runner actually dispatched,
// so small stages do not pay excessive atomic traffic and large stages
// still balance load.
func (p *Pool) dispatchDynamic(n, chunk int, traced bool, t0 time.Time, body func(i, worker int)) {
	runners := p.workers
	if runners > n {
		runners = n
	}
	if chunk <= 0 {
		chunk = n / (8 * runners)
		if chunk < 1 {
			chunk = 1
		}
	}
	var next atomic.Int64
	p.panicked.Store(nil)
	p.wg.Add(runners)
	for w := 0; w < runners; w++ {
		p.jobs <- func(self int) {
			var blocks int64
			if traced {
				w0 := time.Now()
				// Both gauge halves bypass the enabled gate: the pair
				// was admitted by the traced sample above, and gating
				// the decrement would drift the gauge permanently if
				// telemetry were toggled off mid-region.
				telemetry.PoolWorkersBusy.AddUngated(1)
				defer func() {
					telemetry.PoolWorkersBusy.AddUngated(-1)
					telemetry.DefaultTracer.RecordSpan(telemetry.Event{
						Name: "worker", Cat: "par", TID: self + 1,
						Phase: -1, Stage: -1, Blocks: blocks,
					}, w0)
				}()
			}
			for p.panicked.Load() == nil {
				start := int(next.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					body(i, self)
				}
				if traced {
					blocks += int64(end - start)
					telemetry.PoolBlocksDynamic.Add(self, uint64(end-start))
				}
			}
		}
	}
	if traced {
		// All runners are in workers' hands: the dispatch latency.
		telemetry.PoolDispatchSeconds.Observe(time.Since(t0).Seconds())
	}
	p.wg.Wait()
}

// dispatchSticky runs the region with the static block→worker mapping:
// each worker's deque is reloaded with its own range, every worker
// gets one job (even when its range is empty — it will steal), and
// runners that drain their own deque steal halves from the others,
// round-robin starting at their right neighbour.
func (p *Pool) dispatchSticky(n int, traced bool, t0 time.Time, body func(i, worker int)) {
	W := p.workers
	for w := 0; w < W; w++ {
		p.queues[w].reset(w*n/W, (w+1)*n/W)
	}
	p.panicked.Store(nil)
	p.wg.Add(W)
	for w := 0; w < W; w++ {
		p.jobs <- func(self int) { p.runSticky(traced, self, body) }
	}
	if traced {
		telemetry.PoolDispatchSeconds.Observe(time.Since(t0).Seconds())
	}
	p.wg.Wait()
}

// runSticky is one worker's share of a sticky region: drain the own
// deque from the front, then sweep the other deques once, stealing
// halves from the back until everything is claimed. Every item is
// claimed exactly once (single-CAS transfers), and deques only drain
// within a region, so one sweep suffices for termination.
func (p *Pool) runSticky(traced bool, self int, body func(i, worker int)) {
	var blocks int64
	if traced {
		w0 := time.Now()
		telemetry.PoolWorkersBusy.AddUngated(1)
		defer func() {
			telemetry.PoolWorkersBusy.AddUngated(-1)
			telemetry.DefaultTracer.RecordSpan(telemetry.Event{
				Name: "worker", Cat: "par", TID: self + 1,
				Phase: -1, Stage: -1, Blocks: blocks,
			}, w0)
		}()
	}
	W := p.workers
	run := func(start, end int) {
		for i := start; i < end; i++ {
			body(i, self)
		}
		if traced {
			blocks += int64(end - start)
			telemetry.PoolBlocksSticky.Add(self, uint64(end-start))
		}
	}
	for p.panicked.Load() == nil {
		start, end, ok := p.queues[self].claim()
		if !ok {
			break
		}
		run(start, end)
	}
	for off := 1; off < W && p.panicked.Load() == nil; off++ {
		victim := (self + off) % W
		for p.panicked.Load() == nil {
			start, end, ok := p.queues[victim].stealHalf()
			if !ok {
				break
			}
			if traced {
				telemetry.PoolSteals.Inc(self)
			}
			run(start, end)
		}
	}
}

// Run executes fn(w) once for each worker id w in [0, Workers())
// concurrently and waits for all of them. Unlike For, Run guarantees
// every id runs exactly once, so callers can pin per-lane state to ids
// (e.g. the pipelined wavefront baseline). It uses fresh goroutines
// rather than the job queue: pool workers grab jobs competitively, so
// the queue cannot guarantee distinct-id coverage.
// A panicking fn does not kill its goroutine unrecovered (which would
// crash the process): the first panic is captured and re-raised from
// the Run caller after every lane has finished.
func (p *Pool) Run(fn func(worker int)) {
	if p.workers == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	var first atomic.Pointer[capturedPanic]
	wg.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					first.CompareAndSwap(nil, &capturedPanic{val: r})
				}
			}()
			fn(w)
		}(w)
	}
	wg.Wait()
	if pv := first.Load(); pv != nil {
		panic(pv.val)
	}
}
