//go:build linux

package par

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestNumaNodeCPUsFixture(t *testing.T) {
	// Point the sysfs root at a fixture tree and check node ordering
	// and graceful fallback.
	dir := t.TempDir()
	defer func(old string) { numaSysfsRoot = old }(numaSysfsRoot)

	numaSysfsRoot = filepath.Join(dir, "missing")
	if nodes := numaNodeCPUs(); nodes != nil {
		t.Errorf("missing sysfs should yield nil, got %v", nodes)
	}

	numaSysfsRoot = dir
	writeFixture(t, filepath.Join(dir, "node1", "cpulist"), "4-7\n")
	writeFixture(t, filepath.Join(dir, "node0", "cpulist"), "0-3\n")
	writeFixture(t, filepath.Join(dir, "node10", "cpulist"), "8,9\n")
	// "power" and other non-node entries must be ignored.
	writeFixture(t, filepath.Join(dir, "power", "cpulist"), "13\n")
	want := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9}}
	if got := numaNodeCPUs(); !reflect.DeepEqual(got, want) {
		t.Errorf("numaNodeCPUs = %v, want %v (numeric node order)", got, want)
	}
}

func writeFixture(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
