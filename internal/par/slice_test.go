package par

import "testing"

// PartitionCPUs must return disjoint slices that jointly cover the
// allowed set, for any part count.
func TestPartitionCPUsDisjointCover(t *testing.T) {
	if !AffinitySupported() {
		t.Skip("affinity unsupported on this platform")
	}
	allowed, err := allowedCPUs()
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{1, 2, 3, len(allowed), len(allowed) + 3} {
		slices, err := PartitionCPUs(parts)
		if err != nil {
			t.Fatal(err)
		}
		if len(slices) != parts {
			t.Fatalf("parts=%d: got %d slices", parts, len(slices))
		}
		seen := map[int]int{}
		total := 0
		for i, s := range slices {
			for _, c := range s {
				if prev, dup := seen[c]; dup {
					t.Fatalf("parts=%d: cpu %d in slices %d and %d", parts, c, prev, i)
				}
				seen[c] = i
				total++
			}
		}
		if total != len(allowed) {
			t.Fatalf("parts=%d: slices cover %d cpus, allowed set has %d", parts, total, len(allowed))
		}
		// More parts than CPUs: the excess slices are empty, never nil
		// mid-list with CPUs after them... just check each allowed CPU
		// appears exactly once (done above) and empty slices are legal.
	}
}

func TestPartitionCPUsClampsParts(t *testing.T) {
	if !AffinitySupported() {
		t.Skip("affinity unsupported on this platform")
	}
	slices, err := PartitionCPUs(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(slices) != 1 || len(slices[0]) == 0 {
		t.Fatalf("parts=0 should clamp to one full slice, got %v", slices)
	}
}
