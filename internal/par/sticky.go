package par

import "sync/atomic"

// stickyQueue is one worker's slice of a sticky parallel-for: the
// half-open index range the static partition assigned to that worker.
// The owner claims chunks from the front; idle workers steal halves
// from the back, so stolen work is the work farthest from what the
// owner will touch next.
//
// Both cursors live in one atomic word — next in the high 32 bits,
// limit in the low 32 — so a claim and a steal can never partially
// interleave: each is a single CAS, and a lost race just retries.
// Ranges are limited to 32-bit indices; parFor falls back to dynamic
// scheduling for larger trip counts (no stencil stage comes close).
type stickyQueue struct {
	state atomic.Uint64
	_     [56]byte // pad to a cache line: neighbours must not false-share
}

func packRange(next, limit int) uint64 {
	return uint64(uint32(next))<<32 | uint64(uint32(limit))
}

func unpackRange(s uint64) (next, limit int) {
	return int(s >> 32), int(uint32(s))
}

// reset loads the queue with the half-open range [start, end).
func (q *stickyQueue) reset(start, end int) {
	q.state.Store(packRange(start, end))
}

// claim takes the owner's next chunk from the front: an eighth of what
// remains, at least one item. Returns ok=false when the queue is
// empty.
func (q *stickyQueue) claim() (start, end int, ok bool) {
	for {
		s := q.state.Load()
		next, limit := unpackRange(s)
		if next >= limit {
			return 0, 0, false
		}
		take := (limit - next) / 8
		if take < 1 {
			take = 1
		}
		if q.state.CompareAndSwap(s, packRange(next+take, limit)) {
			return next, next + take, true
		}
	}
}

// stealHalf takes the back half of what remains (at least one item).
// Returns ok=false when there is nothing to steal.
func (q *stickyQueue) stealHalf() (start, end int, ok bool) {
	for {
		s := q.state.Load()
		next, limit := unpackRange(s)
		rem := limit - next
		if rem <= 0 {
			return 0, 0, false
		}
		take := (rem + 1) / 2
		if q.state.CompareAndSwap(s, packRange(next, limit-take)) {
			return limit - take, limit, true
		}
	}
}

// remaining reports how many items are still unclaimed (for tests).
func (q *stickyQueue) remaining() int {
	next, limit := unpackRange(q.state.Load())
	if next >= limit {
		return 0
	}
	return limit - next
}
