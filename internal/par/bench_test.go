package par

import (
	"sync/atomic"
	"testing"
)

// The pool's per-region dispatch overhead bounds how small a
// tessellation stage can profitably be; these benches quantify it.

func BenchmarkPoolForSmall(b *testing.B) {
	p := NewPool(0)
	defer p.Close()
	var sink atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.For(16, func(j int) { sink.Add(1) })
	}
}

func BenchmarkPoolForLarge(b *testing.B) {
	p := NewPool(0)
	defer p.Close()
	var sink atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.For(4096, func(j int) { sink.Add(1) })
	}
}

func BenchmarkLimiterPar(b *testing.B) {
	l := NewLimiter(4)
	for i := 0; i < b.N; i++ {
		l.Par(func() {}, func() {})
	}
}
