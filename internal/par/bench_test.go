package par

import (
	"sync/atomic"
	"testing"
)

// The pool's per-region dispatch overhead bounds how small a
// tessellation stage can profitably be; these benches quantify it.

func BenchmarkPoolForSmall(b *testing.B) {
	p := NewPool(0)
	defer p.Close()
	var sink atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.For(16, func(j int) { sink.Add(1) })
	}
}

func BenchmarkPoolForLarge(b *testing.B) {
	p := NewPool(0)
	defer p.Close()
	var sink atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.For(4096, func(j int) { sink.Add(1) })
	}
}

// Sticky dispatch pays per-worker deque reloads instead of a shared
// cursor; these benches compare the two modes' per-region overhead
// (see also bench.MeasureDispatch, which sweeps n for BENCH_PAR.json).

func BenchmarkPoolForStickySmall(b *testing.B) {
	p := NewPoolOpts(0, PoolOptions{Sticky: true})
	defer p.Close()
	var sink atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ForSticky(16, func(j, w int) { sink.Add(1) })
	}
}

func BenchmarkPoolForStickyLarge(b *testing.B) {
	p := NewPoolOpts(0, PoolOptions{Sticky: true})
	defer p.Close()
	var sink atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ForSticky(4096, func(j, w int) { sink.Add(1) })
	}
}

func BenchmarkLimiterPar(b *testing.B) {
	l := NewLimiter(4)
	for i := 0; i < b.N; i++ {
		l.Par(func() {}, func() {})
	}
}
