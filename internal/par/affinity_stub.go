//go:build !linux

package par

// Non-linux stub: affinity syscalls do not exist (darwin) or need a
// different API (windows), so pinning degrades to a recorded no-op.
// The variables mirror the linux shims so the pool code is identical
// on every platform.

func affinitySupported() bool { return false }

func allowedCPUs() ([]int, error) { return nil, errAffinityUnsupported }

var setThreadAffinity = func(cpu int) error { return errAffinityUnsupported }

var resetThreadAffinity = func(cpus []int) error { return errAffinityUnsupported }

// numaNodeCPUs has no portable source outside linux sysfs; returning
// nil keeps the allowed order unchanged.
func numaNodeCPUs() [][]int { return nil }
