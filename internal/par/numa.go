package par

import (
	"strconv"
	"strings"
)

// NUMA-aware default CPU ordering. When PoolOptions.CPUs is empty,
// SetPinned pins worker w to the w-th CPU of the allowed set — which
// on a multi-socket machine packs the first workers onto node 0 and
// leaves other nodes' memory controllers idle until the pool is large.
// Interleaving the default order across NUMA nodes spreads any worker
// count evenly over the nodes, matching the first-touch placement
// story: each worker's pages land on its own node from the start.
//
// The topology comes from /sys/devices/system/node on linux; where
// sysfs is absent (other platforms, restricted containers) the raw
// allowed order is used unchanged.

// parseCPUList parses the kernel's cpulist format ("0-3,8,10-11") into
// the listed CPUs in order. Malformed fields are skipped rather than
// failing the whole list: a partial topology still beats none.
func parseCPUList(s string) []int {
	var out []int
	for _, f := range strings.Split(strings.TrimSpace(s), ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		if lo, hi, ok := strings.Cut(f, "-"); ok {
			a, err1 := strconv.Atoi(strings.TrimSpace(lo))
			b, err2 := strconv.Atoi(strings.TrimSpace(hi))
			if err1 != nil || err2 != nil || a < 0 || b < a {
				continue
			}
			for c := a; c <= b; c++ {
				out = append(out, c)
			}
			continue
		}
		c, err := strconv.Atoi(f)
		if err != nil || c < 0 {
			continue
		}
		out = append(out, c)
	}
	return out
}

// interleaveNUMA orders the allowed CPUs round-robin across the given
// per-node CPU lists: node0's first allowed CPU, node1's first, ...,
// node0's second, and so on. CPUs outside the allowed set are dropped;
// allowed CPUs that no node claims are appended at the end so the
// result is always a permutation of allowed. With fewer than two
// effective nodes the allowed order is returned unchanged.
func interleaveNUMA(nodes [][]int, allowed []int) []int {
	allowedSet := make(map[int]bool, len(allowed))
	for _, c := range allowed {
		allowedSet[c] = true
	}
	var lanes [][]int
	claimed := make(map[int]bool)
	for _, node := range nodes {
		var lane []int
		for _, c := range node {
			if allowedSet[c] && !claimed[c] {
				lane = append(lane, c)
				claimed[c] = true
			}
		}
		if len(lane) > 0 {
			lanes = append(lanes, lane)
		}
	}
	if len(lanes) < 2 {
		return allowed
	}
	out := make([]int, 0, len(allowed))
	for i := 0; len(out) < len(claimed); i++ {
		for _, lane := range lanes {
			if i < len(lane) {
				out = append(out, lane[i])
			}
		}
	}
	for _, c := range allowed {
		if !claimed[c] {
			out = append(out, c)
		}
	}
	return out
}

// numaInterleaved returns the allowed CPUs reordered round-robin
// across NUMA nodes, or allowed unchanged when no usable topology is
// found.
func numaInterleaved(allowed []int) []int {
	return interleaveNUMA(numaNodeCPUs(), allowed)
}
