package par

// Topology slicing for multi-engine processes. A serving process runs
// several engines side by side, each with its own pool; pinning every
// pool to the full allowed set would let the kernel migrate any worker
// anywhere and stack engines on the same cores. PartitionCPUs cuts the
// allowed set into disjoint contiguous slices of the NUMA-interleaved
// order — the same order a single pool pins in — so each engine owns a
// private share of the machine that spans all memory controllers.

// PartitionCPUs partitions the calling thread's allowed CPU set into
// parts disjoint, jointly exhaustive slices, in NUMA-interleaved order
// (see numaInterleaved). Slice i is intended as PoolOptions.CPUs for
// engine i. When parts exceeds the number of allowed CPUs, the excess
// slices are empty (their engines run unpinned on the shared set).
// On platforms without affinity support it returns (nil, err) and
// callers degrade to unsliced, unpinned engines.
func PartitionCPUs(parts int) ([][]int, error) {
	if parts < 1 {
		parts = 1
	}
	allowed, err := allowedCPUs()
	if err != nil {
		return nil, err
	}
	cpus := numaInterleaved(allowed)
	out := make([][]int, parts)
	n := len(cpus)
	for i := 0; i < parts; i++ {
		lo, hi := i*n/parts, (i+1)*n/parts
		if lo < hi {
			out[i] = append([]int(nil), cpus[lo:hi]...)
		}
	}
	return out, nil
}
