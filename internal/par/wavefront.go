package par

import (
	"sync"
	"sync/atomic"
)

// Wavefront coordinates pipelined execution of a 2D dependence grid of
// tasks: task (i, j) may run only after (i-1, j) and (i, j-1) have
// completed. It is the synchronization substrate of the time-skewed
// parallelepiped baseline, whose tiles form exactly such a pipeline.
//
// Lanes are rows (i); within a lane, tasks run in order, so only the
// cross-lane dependence needs tracking: lane i may process column j
// once lane i-1 has finished column j.
type Wavefront struct {
	progress []atomic.Int64 // progress[i] = number of columns lane i has completed
	cond     *sync.Cond
}

// NewWavefront creates a synchronizer for the given number of lanes.
func NewWavefront(lanes int) *Wavefront {
	return &Wavefront{
		progress: make([]atomic.Int64, lanes),
		cond:     sync.NewCond(&sync.Mutex{}),
	}
}

// Wait blocks until lane's predecessor (lane-1) has completed at least
// col+1 columns. Lane 0 never blocks.
func (w *Wavefront) Wait(lane, col int) {
	if lane == 0 {
		return
	}
	p := &w.progress[lane-1]
	if p.Load() > int64(col) {
		return
	}
	w.cond.L.Lock()
	for p.Load() <= int64(col) {
		w.cond.Wait()
	}
	w.cond.L.Unlock()
}

// Done records that lane has completed column col (columns must be
// completed in order) and wakes any waiting successors.
func (w *Wavefront) Done(lane, col int) {
	w.progress[lane].Store(int64(col) + 1)
	w.cond.L.Lock()
	w.cond.Broadcast()
	w.cond.L.Unlock()
}
