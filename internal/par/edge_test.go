package par

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// waitGoroutines waits for the goroutine count to drop back to the
// baseline (worker teardown is asynchronous after Close).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		runtime.Gosched()
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d running, baseline was %d", runtime.NumGoroutine(), base)
}

// For with an empty trip count must not touch the job queue, must not
// run the body, and the pool must tear down cleanly afterwards.
func TestPoolForZeroIterations(t *testing.T) {
	base := runtime.NumGoroutine()
	p := NewPool(4)
	var ran atomic.Int32
	for i := 0; i < 100; i++ {
		p.For(0, func(int) { ran.Add(1) })
		p.For(-3, func(int) { ran.Add(1) })
	}
	if got := ran.Load(); got != 0 {
		t.Fatalf("body ran %d times for n<=0", got)
	}
	p.Close()
	waitGoroutines(t, base)
}

// n=1 takes the serial fast path: exactly one call, on the caller's
// goroutine, no worker dispatch, and no goroutine leak.
func TestPoolForSingleIteration(t *testing.T) {
	base := runtime.NumGoroutine()
	p := NewPool(4)
	var ran atomic.Int32
	var gotIdx atomic.Int32
	gotIdx.Store(-1)
	for i := 0; i < 100; i++ {
		ran.Store(0)
		p.For(1, func(i int) { ran.Add(1); gotIdx.Store(int32(i)) })
		if got := ran.Load(); got != 1 {
			t.Fatalf("body ran %d times for n=1", got)
		}
		if gotIdx.Load() != 0 {
			t.Fatalf("n=1 body saw index %d, want 0", gotIdx.Load())
		}
	}
	p.Close()
	waitGoroutines(t, base)
}

// Limiter with n < 1 must degrade to a purely serial limiter: every
// function still runs exactly once and nothing leaks.
func TestLimiterBelowOne(t *testing.T) {
	for _, n := range []int{-5, 0, 1} {
		base := runtime.NumGoroutine()
		l := NewLimiter(n)
		var ran atomic.Int32
		l.Par()
		l.Par(func() { ran.Add(1) })
		l.Par(
			func() { ran.Add(1) },
			func() { ran.Add(1) },
			func() { ran.Add(1) },
		)
		if got := ran.Load(); got != 4 {
			t.Fatalf("NewLimiter(%d): %d fns ran, want 4", n, got)
		}
		waitGoroutines(t, base)
	}
}

// A serial limiter must also survive nested Par calls without
// deadlocking (all forks run inline).
func TestLimiterSerialNestedPar(t *testing.T) {
	l := NewLimiter(0)
	var ran atomic.Int32
	done := make(chan struct{})
	go func() {
		defer close(done)
		l.Par(
			func() { l.Par(func() { ran.Add(1) }, func() { ran.Add(1) }) },
			func() { ran.Add(1) },
		)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("nested Par on a serial limiter deadlocked")
	}
	if got := ran.Load(); got != 3 {
		t.Fatalf("%d fns ran, want 3", got)
	}
}
