package par

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"tessellate/internal/telemetry"
)

// recoverPanic runs f and returns the panic value it raised (nil if it
// returned normally).
func recoverPanic(f func()) (val any) {
	defer func() { val = recover() }()
	f()
	return nil
}

// A panicking body must not deadlock For, must surface the panic to
// the For caller, and must leave the pool fully usable: no lost
// workers, no leaked goroutines.
func TestPoolForPanickingBody(t *testing.T) {
	base := runtime.NumGoroutine()
	p := NewPool(4)
	for round := 0; round < 3; round++ {
		done := make(chan any, 1)
		go func() {
			done <- recoverPanic(func() {
				p.For(100, func(i int) {
					if i == 37 {
						panic("boom")
					}
				})
			})
		}()
		select {
		case v := <-done:
			if v != "boom" {
				t.Fatalf("round %d: For panicked with %v, want \"boom\"", round, v)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: For deadlocked on a panicking body", round)
		}
		// The pool must still run a full For afterwards: all workers
		// alive, WaitGroup balanced.
		var ran atomic.Int32
		ok := make(chan struct{})
		go func() {
			p.For(1000, func(int) { ran.Add(1) })
			close(ok)
		}()
		select {
		case <-ok:
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: pool unusable after panic", round)
		}
		if got := ran.Load(); got != 1000 {
			t.Fatalf("round %d: %d iterations after panic, want 1000", round, got)
		}
	}
	p.Close()
	waitGoroutines(t, base)
}

// The serial fast path (1 worker) propagates the panic directly and
// the pool stays usable.
func TestPoolForPanickingBodySerial(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	if v := recoverPanic(func() { p.For(5, func(int) { panic(42) }) }); v != 42 {
		t.Fatalf("serial For panicked with %v, want 42", v)
	}
	var ran atomic.Int32
	p.For(5, func(int) { ran.Add(1) })
	if ran.Load() != 5 {
		t.Fatal("serial pool unusable after panic")
	}
}

// Run must behave the same way: first panic re-raised after all lanes
// finish, no goroutine leak, pool reusable.
func TestPoolRunPanickingFn(t *testing.T) {
	base := runtime.NumGoroutine()
	p := NewPool(4)
	var started atomic.Int32
	v := recoverPanic(func() {
		p.Run(func(w int) {
			started.Add(1)
			if w == 2 {
				panic("lane down")
			}
		})
	})
	if v != "lane down" {
		t.Fatalf("Run panicked with %v, want \"lane down\"", v)
	}
	if got := started.Load(); got != 4 {
		t.Fatalf("%d lanes started, want 4 (panic must not stop other lanes)", got)
	}
	var ran atomic.Int32
	p.Run(func(int) { ran.Add(1) })
	if ran.Load() != 4 {
		t.Fatal("pool unusable after Run panic")
	}
	p.Close()
	waitGoroutines(t, base)
}

// Toggling telemetry off in the middle of a parallel region must not
// drift the busy-workers gauge: the increment/decrement pair is
// decided once at region start and both halves bypass the enabled
// gate.
func TestPoolBusyGaugeToggleSafe(t *testing.T) {
	telemetry.Enable()
	defer telemetry.Disable()
	p := NewPool(4)
	defer p.Close()

	entered := make(chan struct{}, 64)
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		p.For(8, func(int) {
			entered <- struct{}{}
			<-release
		})
		close(done)
	}()
	// Wait until at least one worker is inside the region, then flip
	// telemetry off while increments have happened but decrements have
	// not.
	<-entered
	telemetry.Disable()
	close(release)
	<-done
	for len(entered) > 0 {
		<-entered
	}

	if got := telemetry.PoolWorkersBusy.Value(); got != 0 {
		t.Fatalf("busy gauge = %v after toggle mid-region, want 0", got)
	}

	// The mirror case: telemetry enabled mid-region. The pair was
	// sampled disabled at region start, so neither half records and the
	// gauge still reads 0.
	telemetry.Disable()
	done2 := make(chan struct{})
	release2 := make(chan struct{})
	go func() {
		p.For(8, func(int) {
			entered <- struct{}{}
			<-release2
		})
		close(done2)
	}()
	<-entered
	telemetry.Enable()
	close(release2)
	<-done2
	if got := telemetry.PoolWorkersBusy.Value(); got != 0 {
		t.Fatalf("busy gauge = %v after enable mid-region, want 0", got)
	}
}
