package tessellate

import (
	"math/rand"
	"testing"

	"tessellate/internal/verify"
)

// A variable-coefficient kernel has the plain 5-point dependence
// footprint, so every scheme must schedule it correctly and produce
// bitwise-identical fields — the schedules care about the footprint,
// not the arithmetic.
func TestVarCoefUnderAllSchemes(t *testing.T) {
	const nx, ny = 44, 38
	base := NewGrid2D(nx, ny, 1, 1)
	rng := rand.New(rand.NewSource(31))
	base.Fill(func(x, y int) float64 { return rng.Float64() * 10 })
	base.SetBoundary(0)

	// A conductive channel through an insulating medium.
	kappa := make([]float64, len(base.Buf[0]))
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			if y > ny/3 && y < 2*ny/3 {
				kappa[base.Idx(x, y)] = 1
			} else {
				kappa[base.Idx(x, y)] = 0.05
			}
		}
	}
	spec := NewVarCoef2D(kappa)

	eng := NewEngine(3)
	defer eng.Close()
	ref := base.Clone()
	if err := eng.Run2D(ref, spec, 12, Options{Scheme: Naive}); err != nil {
		t.Fatal(err)
	}
	for _, sc := range []Scheme{Tessellation, SpaceTiled, Skewed, Diamond, Oblivious, MWD} {
		g := base.Clone()
		if err := eng.Run2D(g, spec, 12, Options{Scheme: sc, TimeTile: 3}); err != nil {
			t.Fatalf("%v: %v", sc, err)
		}
		if r := verify.Grids2D(g, ref); !r.Equal {
			t.Fatalf("%v: %v", sc, r.Error("varcoef"))
		}
	}

	// Physics: heat must spread along the conductive channel faster
	// than across the insulator. Compare variance drop inside/outside.
	insideSpread, outsideSpread := spread(ref, func(y int) bool { return y > ny/3 && y < 2*ny/3 }),
		spread(ref, func(y int) bool { return y <= ny/3 || y >= 2*ny/3 })
	baseIn, baseOut := spread(base, func(y int) bool { return y > ny/3 && y < 2*ny/3 }),
		spread(base, func(y int) bool { return y <= ny/3 || y >= 2*ny/3 })
	if (baseIn-insideSpread)/baseIn <= (baseOut-outsideSpread)/baseOut {
		t.Error("conductive channel did not smooth faster than insulator")
	}
}

// spread returns the field variance over the selected rows.
func spread(g *Grid2D, sel func(y int) bool) float64 {
	var sum, sum2, n float64
	for x := 0; x < g.NX; x++ {
		for y := 0; y < g.NY; y++ {
			if !sel(y) {
				continue
			}
			v := g.At(x, y)
			sum += v
			sum2 += v * v
			n++
		}
	}
	mean := sum / n
	return sum2/n - mean*mean
}
