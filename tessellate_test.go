package tessellate

import (
	"math/rand"
	"testing"

	"tessellate/internal/verify"
)

// schemes1D..3D list the schemes available per dimensionality.
var (
	schemes1D = []Scheme{Tessellation, Naive, SpaceTiled, Skewed, Diamond, Oblivious}
	schemes2D = []Scheme{Tessellation, Naive, SpaceTiled, Skewed, Diamond, Oblivious, MWD, Overlapped}
	schemes3D = []Scheme{Tessellation, Naive, SpaceTiled, Skewed, Diamond, Oblivious, MWD, D35}
)

// TestAllSchemesAgree1D runs every 1D scheme on the same input and
// demands bitwise-identical output.
func TestAllSchemesAgree1D(t *testing.T) {
	eng := NewEngine(4)
	defer eng.Close()
	for _, s := range []*Stencil{Heat1D, P1D5} {
		base := NewGrid1D(200, s.MaxSlope())
		rng := rand.New(rand.NewSource(5))
		base.Fill(func(x int) float64 { return rng.Float64() })
		base.SetBoundary(0.75)

		ref := base.Clone()
		if err := eng.Run1D(ref, s, 25, Options{Scheme: Naive}); err != nil {
			t.Fatal(err)
		}
		for _, sc := range schemes1D {
			g := base.Clone()
			if err := eng.Run1D(g, s, 25, Options{Scheme: sc, TimeTile: 4}); err != nil {
				t.Fatalf("%s/%v: %v", s.Name, sc, err)
			}
			if r := verify.Grids1D(g, ref); !r.Equal {
				t.Fatalf("%s/%v: %v", s.Name, sc, r.Error(sc.String()))
			}
		}
	}
}

// TestAllSchemesAgree2D does the same for the three 2D kernels.
func TestAllSchemesAgree2D(t *testing.T) {
	eng := NewEngine(4)
	defer eng.Close()
	for _, s := range []*Stencil{Heat2D, Box2D9, Life} {
		base := NewGrid2D(48, 52, 1, 1)
		rng := rand.New(rand.NewSource(6))
		if s == Life {
			base.Fill(func(x, y int) float64 { return float64(rng.Intn(2)) })
		} else {
			base.Fill(func(x, y int) float64 { return rng.Float64() })
		}
		ref := base.Clone()
		if err := eng.Run2D(ref, s, 14, Options{Scheme: Naive}); err != nil {
			t.Fatal(err)
		}
		for _, sc := range schemes2D {
			g := base.Clone()
			if err := eng.Run2D(g, s, 14, Options{Scheme: sc, TimeTile: 3}); err != nil {
				t.Fatalf("%s/%v: %v", s.Name, sc, err)
			}
			if r := verify.Grids2D(g, ref); !r.Equal {
				t.Fatalf("%s/%v: %v", s.Name, sc, r.Error(sc.String()))
			}
		}
	}
}

// TestAllSchemesAgree3D does the same for the 3D kernels.
func TestAllSchemesAgree3D(t *testing.T) {
	eng := NewEngine(4)
	defer eng.Close()
	for _, s := range []*Stencil{Heat3D, Box3D27} {
		base := NewGrid3D(20, 18, 22, 1, 1, 1)
		rng := rand.New(rand.NewSource(7))
		base.Fill(func(x, y, z int) float64 { return rng.Float64() })
		ref := base.Clone()
		if err := eng.Run3D(ref, s, 7, Options{Scheme: Naive}); err != nil {
			t.Fatal(err)
		}
		for _, sc := range schemes3D {
			g := base.Clone()
			if err := eng.Run3D(g, s, 7, Options{Scheme: sc, TimeTile: 2}); err != nil {
				t.Fatalf("%s/%v: %v", s.Name, sc, err)
			}
			if r := verify.Grids3D(g, ref); !r.Equal {
				t.Fatalf("%s/%v: %v", s.Name, sc, r.Error(sc.String()))
			}
		}
	}
}

func TestDefaultOptionsAreTessellation(t *testing.T) {
	eng := NewEngine(2)
	defer eng.Close()
	g := NewGrid2D(40, 40, 1, 1)
	rng := rand.New(rand.NewSource(8))
	g.Fill(func(x, y int) float64 { return rng.Float64() })
	ref := g.Clone()
	if err := eng.Run2D(g, Heat2D, 10, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run2D(ref, Heat2D, 10, Options{Scheme: Naive}); err != nil {
		t.Fatal(err)
	}
	if r := verify.Grids2D(g, ref); !r.Equal {
		t.Fatal(r.Error("default-options"))
	}
}

func TestNoMergeAblation(t *testing.T) {
	eng := NewEngine(3)
	defer eng.Close()
	g := NewGrid2D(36, 36, 1, 1)
	rng := rand.New(rand.NewSource(9))
	g.Fill(func(x, y int) float64 { return rng.Float64() })
	merged := g.Clone()
	if err := eng.Run2D(g, Heat2D, 9, Options{TimeTile: 3, NoMerge: true}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run2D(merged, Heat2D, 9, Options{TimeTile: 3}); err != nil {
		t.Fatal(err)
	}
	if r := verify.Grids2D(g, merged); !r.Equal {
		t.Fatal(r.Error("merge-ablation"))
	}
}

func TestRunNDThroughPublicAPI(t *testing.T) {
	eng := NewEngine(2)
	defer eng.Close()
	s := NewStar(4, 1)
	g := NewNDGrid([]int{6, 6, 6, 6}, []int{1, 1, 1, 1})
	rng := rand.New(rand.NewSource(10))
	g.Fill(func(c []int) float64 { return rng.Float64() })
	if err := eng.RunND(g, s, 3, Options{TimeTile: 1}); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunND(g, s, 3, Options{Scheme: Diamond}); err == nil {
		t.Fatal("non-tessellation ND scheme should be rejected")
	}
}

func TestSchemeNamesRoundTrip(t *testing.T) {
	for _, sc := range Schemes() {
		got, err := SchemeByName(sc.String())
		if err != nil || got != sc {
			t.Fatalf("SchemeByName(%q) = %v, %v", sc.String(), got, err)
		}
	}
	if _, err := SchemeByName("bogus"); err == nil {
		t.Fatal("bogus scheme accepted")
	}
}

func TestErrorPaths(t *testing.T) {
	eng := NewEngine(1)
	defer eng.Close()
	g := NewGrid1D(20, 1)
	if err := eng.Run1D(g, Heat1D, -1, Options{}); err == nil {
		t.Error("negative steps accepted")
	}
	if err := eng.Run1D(g, Heat1D, 2, Options{Scheme: MWD}); err == nil {
		t.Error("MWD in 1D accepted")
	}
	if err := eng.Run1D(g, Heat1D, 2, Options{Scheme: Scheme(99)}); err == nil {
		t.Error("unknown scheme accepted")
	}
	g2 := NewGrid2D(20, 20, 1, 1)
	if err := eng.Run2D(g2, Heat1D, 2, Options{}); err == nil {
		t.Error("1D kernel on 2D grid accepted")
	}
}

func TestEngineThreadCount(t *testing.T) {
	eng := NewEngine(3)
	defer eng.Close()
	if eng.Threads() != 3 {
		t.Fatalf("Threads() = %d, want 3", eng.Threads())
	}
	def := NewEngine(0)
	defer def.Close()
	if def.Threads() < 1 {
		t.Fatal("default engine has no workers")
	}
}
