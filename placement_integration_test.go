package tessellate_test

import (
	"testing"

	"tessellate"
)

// Topology-aware scheduling is a pure performance knob: sticky
// mapping, CPU pinning and first-touch allocation must all leave the
// numerics bitwise identical to the plain engine and to the naive
// sweep, in every dimension. Both time-parity buffers are compared so
// intermediate states match too, not just the final sweep.

func placedEngine(t *testing.T) *tessellate.Engine {
	t.Helper()
	eng := tessellate.NewEngineOpts(tessellate.EngineOptions{Threads: 4, Pin: true, Sticky: true})
	if err := eng.PinError(); err != nil {
		t.Logf("pinning degraded (expected off-linux or in restricted cgroups): %v", err)
	}
	if !eng.StickyEnabled() {
		t.Fatal("EngineOptions.Sticky not applied")
	}
	return eng
}

func equalBuffers(t *testing.T, name string, a, b [2][]float64) {
	t.Helper()
	for p := 0; p < 2; p++ {
		if len(a[p]) != len(b[p]) {
			t.Fatalf("%s: buffer %d length %d != %d", name, p, len(a[p]), len(b[p]))
		}
		for i := range a[p] {
			if a[p][i] != b[p][i] {
				t.Fatalf("%s: buffer %d differs at index %d: %v != %v", name, p, i, a[p][i], b[p][i])
			}
		}
	}
}

func TestPlacementBitwiseIdentical1D(t *testing.T) {
	const n, steps = 4000, 40
	init := func(g *tessellate.Grid1D) {
		g.Fill(func(x int) float64 { return float64(x%23) * 0.125 })
		g.SetBoundary(1)
	}

	ref := tessellate.NewGrid1D(n, 1)
	init(ref)
	plainEng := tessellate.NewEngine(4)
	defer plainEng.Close()
	if err := plainEng.Run1D(ref, tessellate.Heat1D, steps, tessellate.Options{Scheme: tessellate.Naive}); err != nil {
		t.Fatal(err)
	}

	eng := placedEngine(t)
	defer eng.Close()
	g := eng.AllocGrid1D(n, 1)
	init(g)
	if err := eng.Run1D(g, tessellate.Heat1D, steps, tessellate.Options{}); err != nil {
		t.Fatal(err)
	}
	equalBuffers(t, "1D placed-tessellation vs naive", g.Buf, ref.Buf)
}

func TestPlacementBitwiseIdentical2D(t *testing.T) {
	const nx, ny, steps = 128, 96, 24
	init := func(g *tessellate.Grid2D) {
		g.Fill(func(x, y int) float64 { return float64((x*5+y*3)%29) * 0.0625 })
		g.SetBoundary(1)
	}

	ref := tessellate.NewGrid2D(nx, ny, 1, 1)
	init(ref)
	plainEng := tessellate.NewEngine(4)
	defer plainEng.Close()
	if err := plainEng.Run2D(ref, tessellate.Heat2D, steps, tessellate.Options{}); err != nil {
		t.Fatal(err)
	}

	eng := placedEngine(t)
	defer eng.Close()
	g := eng.AllocGrid2D(nx, ny, 1, 1)
	init(g)
	if err := eng.Run2D(g, tessellate.Heat2D, steps, tessellate.Options{}); err != nil {
		t.Fatal(err)
	}
	equalBuffers(t, "2D placed vs plain tessellation", g.Buf, ref.Buf)

	// And toggling the knobs mid-life must not change results either.
	if err := eng.SetPinned(false); err != nil {
		t.Fatalf("SetPinned(false) = %v", err)
	}
	eng.SetSticky(false)
	g2 := eng.AllocGrid2D(nx, ny, 1, 1)
	init(g2)
	if err := eng.Run2D(g2, tessellate.Heat2D, steps, tessellate.Options{}); err != nil {
		t.Fatal(err)
	}
	equalBuffers(t, "2D after unpin/unsticky", g2.Buf, ref.Buf)
}

func TestPlacementBitwiseIdentical3D(t *testing.T) {
	const nx, ny, nz, steps = 48, 40, 36, 12
	init := func(g *tessellate.Grid3D) {
		g.Fill(func(x, y, z int) float64 { return float64((x+2*y+3*z)%31) * 0.03125 })
		g.SetBoundary(1)
	}

	ref := tessellate.NewGrid3D(nx, ny, nz, 1, 1, 1)
	init(ref)
	plainEng := tessellate.NewEngine(4)
	defer plainEng.Close()
	if err := plainEng.Run3D(ref, tessellate.Heat3D, steps, tessellate.Options{Scheme: tessellate.Naive}); err != nil {
		t.Fatal(err)
	}

	eng := placedEngine(t)
	defer eng.Close()
	g := eng.AllocGrid3D(nx, ny, nz, 1, 1, 1)
	init(g)
	if err := eng.Run3D(g, tessellate.Heat3D, steps, tessellate.Options{}); err != nil {
		t.Fatal(err)
	}
	equalBuffers(t, "3D placed-tessellation vs naive", g.Buf, ref.Buf)
}

// The placement surface must degrade loudly, not wrongly: Placement
// always has Threads() entries, and PinSupported is consistent with
// what SetPinned reports.
func TestPlacementIntrospection(t *testing.T) {
	eng := tessellate.NewEngine(3)
	defer eng.Close()
	pl := eng.Placement()
	if len(pl) != 3 {
		t.Fatalf("Placement() has %d entries, want 3", len(pl))
	}
	for w, cpu := range pl {
		if cpu != -1 {
			t.Fatalf("worker %d placed at %d before SetPinned", w, cpu)
		}
	}
	err := eng.SetPinned(true)
	if !tessellate.PinSupported() {
		if err == nil {
			t.Fatal("SetPinned succeeded on a platform without affinity support")
		}
		if eng.PinError() == nil {
			t.Fatal("PinError empty after unsupported SetPinned")
		}
	}
	if err := eng.SetPinned(false); err != nil {
		t.Fatalf("SetPinned(false) = %v", err)
	}
}
