// Benchmarks regenerating the paper's evaluation, one benchmark family
// per table/figure. Problem sizes are scaled (relative scheme ordering,
// not absolute throughput, is the reproduction target; run
// cmd/stencilbench -paper for Table 4 sizes). Each benchmark reports
// Mupd/s — millions of point updates per second, the unit of the
// paper's figures.
package tessellate_test

import (
	"fmt"
	"testing"

	"tessellate"
	"tessellate/internal/bench"
)

// benchScale shrinks Table 4 workloads to testing.B-friendly sizes.
const (
	benchScale1D = 64
	benchScale2D = 64
	benchScale3D = 4
)

func runWorkload(b *testing.B, w bench.Workload, schemes []tessellate.Scheme) {
	b.Helper()
	for _, sc := range schemes {
		b.Run(sc.String(), func(b *testing.B) {
			var updates float64
			for i := 0; i < b.N; i++ {
				m, err := bench.Run(w, sc, 0)
				if err != nil {
					b.Fatal(err)
				}
				updates += float64(w.Updates())
				_ = m
			}
			b.ReportMetric(updates/b.Elapsed().Seconds()/1e6, "Mupd/s")
		})
	}
}

func figWorkload(b *testing.B, fig, kernel string, scale int) bench.Workload {
	b.Helper()
	for _, w := range bench.ByFigure(fig) {
		if w.Kernel == kernel {
			return w.Scaled(scale)
		}
	}
	b.Fatalf("no workload %s in figure %s", kernel, fig)
	return bench.Workload{}
}

// Figure 8: 1D stencils (Heat-1D 3-point and 1d5p), tessellation vs
// diamond (Pluto) vs cache-oblivious (Pochoir).
func BenchmarkFig8Heat1D(b *testing.B) {
	runWorkload(b, figWorkload(b, "8", "heat-1d", benchScale1D), bench.FigureSchemes("8"))
}

func BenchmarkFig8P1D5(b *testing.B) {
	runWorkload(b, figWorkload(b, "8", "1d5p", benchScale1D), bench.FigureSchemes("8"))
}

// Figure 9: Game of Life.
func BenchmarkFig9Life(b *testing.B) {
	runWorkload(b, figWorkload(b, "9", "game-of-life", benchScale2D), bench.FigureSchemes("9"))
}

// Figure 10: 2D stencils.
func BenchmarkFig10Heat2D(b *testing.B) {
	runWorkload(b, figWorkload(b, "10", "heat-2d", benchScale2D), bench.FigureSchemes("10"))
}

func BenchmarkFig10Box2D9(b *testing.B) {
	runWorkload(b, figWorkload(b, "10", "2d9p", benchScale2D), bench.FigureSchemes("10"))
}

// Figure 11a: Heat-3D (3d7p), including the Girih-like MWD scheme.
func BenchmarkFig11aHeat3D(b *testing.B) {
	runWorkload(b, figWorkload(b, "11a", "heat-3d", benchScale3D), bench.FigureSchemes("11a"))
}

// Figure 11b: 3d27p, the headline result (paper: up to 12% over the
// best existing scheme).
func BenchmarkFig11bBox3D27(b *testing.B) {
	runWorkload(b, figWorkload(b, "11b", "3d27p", benchScale3D), bench.FigureSchemes("11b"))
}

// Figure 12: Heat-3D memory transfer volume, replayed through the cache
// model (bytes per point update reported as the metric).
func BenchmarkFig12Traffic(b *testing.B) {
	w := figWorkload(b, "12", "heat-3d", 8)
	const cacheBytes = 1 << 17 // 128 KiB vs the 512 KiB scaled working set
	// Fit tiles to the cache model, as the paper's blocking targets its
	// LLC (same rule as the Fig. 12 runner in internal/bench).
	big := 8
	for cand := big + 4; 16*cand*cand*cand <= cacheBytes; cand += 4 {
		big = cand
	}
	w.TessBT, w.TessBig = big/4, []int{big, big, big}
	w.DiamondBX, w.DiamondBT = big/2, big/4
	w.SkewBT, w.SkewBX = big/4, []int{big / 2, big / 2, big / 2}
	for _, sc := range append([]tessellate.Scheme{tessellate.Naive}, bench.FigureSchemes("12")...) {
		b.Run(sc.String(), func(b *testing.B) {
			var bytesPerUpdate float64
			for i := 0; i < b.N; i++ {
				tr, err := bench.MeasureTraffic(w, sc, cacheBytes)
				if err != nil {
					b.Fatal(err)
				}
				bytesPerUpdate = tr.BytesPerPoint
			}
			b.ReportMetric(bytesPerUpdate, "DRAMbytes/upd")
		})
	}
}

// Ablations: the design knobs of §4.

// BenchmarkAblationMerge compares the merged (d syncs/phase) and
// unmerged (d+1 syncs/phase) schedules (§4.3).
func BenchmarkAblationMerge(b *testing.B) {
	w := figWorkload(b, "10", "heat-2d", benchScale2D)
	spec, _ := tessellate.StencilByName(w.Kernel)
	for _, variant := range []struct {
		name    string
		noMerge bool
	}{{"merged", false}, {"unmerged", true}} {
		b.Run(variant.name, func(b *testing.B) {
			eng := tessellate.NewEngine(0)
			defer eng.Close()
			for i := 0; i < b.N; i++ {
				g := tessellate.NewGrid2D(w.N[0], w.N[1], 1, 1)
				opt := tessellate.Options{TimeTile: w.TessBT, Block: w.TessBig, NoMerge: variant.noMerge}
				if err := eng.Run2D(g, spec, w.Steps, opt); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(w.Updates())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mupd/s")
		})
	}
}

// BenchmarkAblationCoarsening compares asymmetric (coarsened, §4.2)
// with uniform block sizes.
func BenchmarkAblationCoarsening(b *testing.B) {
	w := figWorkload(b, "10", "heat-2d", benchScale2D)
	spec, _ := tessellate.StencilByName(w.Kernel)
	for _, variant := range []struct {
		name  string
		block []int
	}{
		{"coarsened-1x2", []int{w.TessBig[0], 2 * w.TessBig[0]}},
		{"uniform", []int{w.TessBig[0], w.TessBig[0]}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			eng := tessellate.NewEngine(0)
			defer eng.Close()
			for i := 0; i < b.N; i++ {
				g := tessellate.NewGrid2D(w.N[0], w.N[1], 1, 1)
				opt := tessellate.Options{TimeTile: w.TessBT, Block: variant.block}
				if err := eng.Run2D(g, spec, w.Steps, opt); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(w.Updates())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mupd/s")
		})
	}
}

// BenchmarkAblationTimeTile sweeps the time-tile height b, the central
// tuning parameter of the scheme.
func BenchmarkAblationTimeTile(b *testing.B) {
	w := figWorkload(b, "10", "heat-2d", benchScale2D)
	spec, _ := tessellate.StencilByName(w.Kernel)
	for _, bt := range []int{2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("bt=%d", bt), func(b *testing.B) {
			eng := tessellate.NewEngine(0)
			defer eng.Close()
			for i := 0; i < b.N; i++ {
				g := tessellate.NewGrid2D(w.N[0], w.N[1], 1, 1)
				opt := tessellate.Options{TimeTile: bt, Block: []int{4 * bt, 8 * bt}}
				if err := eng.Run2D(g, spec, w.Steps, opt); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(w.Updates())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mupd/s")
		})
	}
}

// BenchmarkSyncOverhead measures the cost structure Table 1 predicts:
// the tessellation needs d synchronizations per time tile. It runs a
// tiny per-phase problem where synchronization dominates.
func BenchmarkSyncOverhead(b *testing.B) {
	eng := tessellate.NewEngine(0)
	defer eng.Close()
	g := tessellate.NewGrid2D(64, 64, 1, 1)
	for i := 0; i < b.N; i++ {
		if err := eng.Run2D(g, tessellate.Heat2D, 8, tessellate.Options{TimeTile: 2, Block: []int{8, 8}}); err != nil {
			b.Fatal(err)
		}
	}
}
