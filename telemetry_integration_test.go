package tessellate_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"tessellate"
)

// The public telemetry facade end to end: enabling instrumentation
// must not change a single bit of the numerics, and the exposition and
// trace dump must contain the run that just happened.
func TestPublicTelemetryFacade(t *testing.T) {
	run := func() *tessellate.Grid3D {
		g := tessellate.NewGrid3D(40, 36, 32, 1, 1, 1)
		g.Fill(func(x, y, z int) float64 { return float64(x+2*y+3*z) / 7 })
		g.SetBoundary(1)
		eng := tessellate.NewEngine(3)
		defer eng.Close()
		if err := eng.Run3D(g, tessellate.Heat3D, 9, tessellate.Options{}); err != nil {
			t.Fatal(err)
		}
		return g
	}

	base := run()

	tessellate.EnableTelemetry()
	defer tessellate.DisableTelemetry()
	tessellate.ResetTrace()
	instr := run()

	for p := 0; p < 2; p++ {
		for i := range base.Buf[p] {
			if base.Buf[p][i] != instr.Buf[p][i] {
				t.Fatalf("telemetry changed the numerics: buffer %d index %d", p, i)
			}
		}
	}

	var metrics bytes.Buffer
	if err := tessellate.WriteMetrics(&metrics); err != nil {
		t.Fatal(err)
	}
	out := metrics.String()
	for _, fam := range []string{
		"tess_pool_dispatch_seconds",
		"tess_stage_duration_seconds",
		"tess_points_updated_total",
		"tess_dist_bytes_total",
		"tess_pool_for_size",
	} {
		if !strings.Contains(out, fam) {
			t.Fatalf("exposition missing family %s:\n%s", fam, out)
		}
	}
	if strings.Contains(out, "tess_points_updated_total 0\n") {
		t.Fatal("points counter still zero after an instrumented run")
	}

	var trace bytes.Buffer
	if err := tessellate.Trace(&trace); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace.Bytes(), &dump); err != nil {
		t.Fatalf("trace dump is not valid JSON: %v", err)
	}
	if len(dump.TraceEvents) == 0 {
		t.Fatal("trace dump has no events after an instrumented run")
	}
}
