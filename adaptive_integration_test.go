package tessellate_test

import (
	"testing"

	"tessellate"
)

// scriptedRetuner follows a fixed plan: at each boundary it pops the
// next options (nil entry = keep current). It lets the tests exercise
// mid-run re-tiling deterministically, without timing.
type scriptedRetuner struct {
	phases     int
	plan       []*tessellate.Options
	boundaries []tessellate.PhaseBoundary
}

func (s *scriptedRetuner) Phases() int { return s.phases }

func (s *scriptedRetuner) Retune(b tessellate.PhaseBoundary) (tessellate.Options, bool) {
	s.boundaries = append(s.boundaries, b)
	if len(s.plan) == 0 {
		return tessellate.Options{}, false
	}
	next := s.plan[0]
	s.plan = s.plan[1:]
	if next == nil {
		return tessellate.Options{}, false
	}
	return *next, true
}

// An adaptive run that re-tiles at every boundary must stay bitwise
// identical to the plain fixed-schedule run, in every dimension.
func TestRunAdaptiveScriptedExactness(t *testing.T) {
	eng := tessellate.NewEngine(4)
	defer eng.Close()

	t.Run("1D", func(t *testing.T) {
		const n, steps = 301, 25
		g := tessellate.NewGrid1D(n, 1)
		g.Fill(func(x int) float64 { return float64(x%13) * 0.25 })
		ref := g.Clone()
		rt := &scriptedRetuner{phases: 2, plan: []*tessellate.Options{
			{TimeTile: 2, Block: []int{16}},
			nil,
			{TimeTile: 4, Block: []int{24}},
		}}
		if err := eng.RunAdaptive1D(g, tessellate.Heat1D, steps, tessellate.Options{TimeTile: 3, Block: []int{12}}, rt); err != nil {
			t.Fatal(err)
		}
		if len(rt.boundaries) == 0 {
			t.Fatal("retuner never consulted")
		}
		if err := eng.Run1D(ref, tessellate.Heat1D, steps, tessellate.Options{Scheme: tessellate.Naive}); err != nil {
			t.Fatal(err)
		}
		for x := 0; x < n; x++ {
			if g.At(x) != ref.At(x) {
				t.Fatalf("diverged at %d", x)
			}
		}
	})

	t.Run("2D", func(t *testing.T) {
		const nx, ny, steps = 61, 53, 22
		g := tessellate.NewGrid2D(nx, ny, 1, 1)
		g.Fill(func(x, y int) float64 { return float64((x*y)%11) * 0.5 })
		ref := g.Clone()
		rt := &scriptedRetuner{phases: 1, plan: []*tessellate.Options{
			{TimeTile: 2, Block: []int{10, 12}},
			{TimeTile: 4, Block: []int{18, 20}, NoMerge: true},
			{TimeTile: 3, Block: []int{12, 14}},
		}}
		if err := eng.RunAdaptive2D(g, tessellate.Heat2D, steps, tessellate.Options{TimeTile: 3, Block: []int{12, 12}}, rt); err != nil {
			t.Fatal(err)
		}
		if err := eng.Run2D(ref, tessellate.Heat2D, steps, tessellate.Options{Scheme: tessellate.Naive}); err != nil {
			t.Fatal(err)
		}
		for x := 0; x < nx; x++ {
			for y := 0; y < ny; y++ {
				if g.At(x, y) != ref.At(x, y) {
					t.Fatalf("diverged at (%d,%d)", x, y)
				}
			}
		}
		// Boundary metadata must be consistent: monotone StepsDone,
		// resolved options.
		last := 0
		for _, b := range rt.boundaries {
			if b.StepsDone <= last || b.StepsDone >= steps {
				t.Fatalf("boundary at %d outside (last %d, total %d)", b.StepsDone, last, steps)
			}
			last = b.StepsDone
			if b.StepsTotal != steps || b.Options.TimeTile < 1 || len(b.Options.Block) != 2 {
				t.Fatalf("malformed boundary %+v", b)
			}
		}
	})

	t.Run("3D", func(t *testing.T) {
		const n, steps = 24, 9
		g := tessellate.NewGrid3D(n, n, n, 1, 1, 1)
		g.Fill(func(x, y, z int) float64 { return float64((x + y + z) % 7) })
		ref := g.Clone()
		rt := &scriptedRetuner{phases: 1, plan: []*tessellate.Options{
			{TimeTile: 1, Block: []int{6, 6, 8}},
		}}
		if err := eng.RunAdaptive3D(g, tessellate.Heat3D, steps, tessellate.Options{TimeTile: 2, Block: []int{8, 8, 10}}, rt); err != nil {
			t.Fatal(err)
		}
		if err := eng.Run3D(ref, tessellate.Heat3D, steps, tessellate.Options{Scheme: tessellate.Naive}); err != nil {
			t.Fatal(err)
		}
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				for z := 0; z < n; z++ {
					if g.At(x, y, z) != ref.At(x, y, z) {
						t.Fatalf("diverged at (%d,%d,%d)", x, y, z)
					}
				}
			}
		}
	})
}

// A nil retuner degrades to a plain run; non-tessellation schemes and
// dimension mismatches are rejected up front.
func TestRunAdaptiveEdges(t *testing.T) {
	eng := tessellate.NewEngine(2)
	defer eng.Close()

	g := tessellate.NewGrid2D(48, 48, 1, 1)
	g.Fill(func(x, y int) float64 { return float64(x - y) })
	ref := g.Clone()
	if err := eng.RunAdaptive2D(g, tessellate.Heat2D, 10, tessellate.Options{}, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run2D(ref, tessellate.Heat2D, 10, tessellate.Options{}); err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 48; x++ {
		for y := 0; y < 48; y++ {
			if g.At(x, y) != ref.At(x, y) {
				t.Fatalf("nil-retuner run diverged at (%d,%d)", x, y)
			}
		}
	}

	if err := eng.RunAdaptive2D(g, tessellate.Heat2D, 4, tessellate.Options{Scheme: tessellate.Diamond}, nil); err == nil {
		t.Fatal("non-tessellation scheme accepted")
	}
	if err := eng.RunAdaptive2D(g, tessellate.Heat3D, 4, tessellate.Options{}, nil); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if err := eng.RunAdaptive2D(g, tessellate.Heat2D, -1, tessellate.Options{}, nil); err == nil {
		t.Fatal("negative steps accepted")
	}

	// A retuner returning an illegal tiling fails the run with a
	// descriptive error rather than computing garbage.
	bad := &scriptedRetuner{phases: 1, plan: []*tessellate.Options{
		{TimeTile: 8, Block: []int{4, 4}},
	}}
	if err := eng.RunAdaptive2D(g, tessellate.Heat2D, 20, tessellate.Options{TimeTile: 2, Block: []int{8, 8}}, bad); err == nil {
		t.Fatal("illegal re-tile accepted")
	}
}
