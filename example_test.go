package tessellate_test

import (
	"fmt"

	"tessellate"
)

// The minimal use: advance a 2D heat field with the tessellation
// scheme and default tile parameters.
func ExampleEngine_Run2D() {
	g := tessellate.NewGrid2D(64, 64, 1, 1)
	g.Set(32, 32, 100) // a hot point on a cold plate
	g.SetBoundary(0)

	eng := tessellate.NewEngine(1)
	defer eng.Close()
	if err := eng.Run2D(g, tessellate.Heat2D, 50, tessellate.Options{}); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("steps completed: %d\n", g.Step)
	fmt.Printf("heat spread: centre %.4f > corner %.6f\n", g.At(32, 32), g.At(1, 1))
	// Output:
	// steps completed: 50
	// heat spread: centre 1.2735 > corner 0.000000
}

// Schemes are interchangeable: the same input under a baseline
// scheduler produces the bitwise-identical field.
func ExampleEngine_Run2D_schemes() {
	build := func() *tessellate.Grid2D {
		g := tessellate.NewGrid2D(48, 48, 1, 1)
		g.Fill(func(x, y int) float64 { return float64((x*y)%7) * 0.1 })
		return g
	}
	eng := tessellate.NewEngine(1)
	defer eng.Close()

	a, b := build(), build()
	eng.Run2D(a, tessellate.Box2D9, 12, tessellate.Options{Scheme: tessellate.Tessellation, TimeTile: 3})
	eng.Run2D(b, tessellate.Box2D9, 12, tessellate.Options{Scheme: tessellate.Diamond, TimeTile: 3})

	same := true
	for x := 0; x < 48 && same; x++ {
		for y := 0; y < 48; y++ {
			if a.At(x, y) != b.At(x, y) {
				same = false
				break
			}
		}
	}
	fmt.Println("tessellation == diamond, bit for bit:", same)
	// Output:
	// tessellation == diamond, bit for bit: true
}

// Custom stencils of any order run through the generic constructor and
// the ND executor, with optional periodic boundaries (paper §3.6).
func ExampleEngine_RunND() {
	star := tessellate.NewStar(2, 1)
	g := tessellate.NewNDGrid([]int{24, 24}, []int{0, 0})
	g.Set([]int{0, 0}, 24*24) // pulse at the corner, wrapping domain

	eng := tessellate.NewEngine(1)
	defer eng.Close()
	opt := tessellate.Options{TimeTile: 2, Block: []int{8, 8}, Periodic: true}
	if err := eng.RunND(g, star, 6, opt); err != nil {
		fmt.Println(err)
		return
	}
	// Periodic diffusion conserves total mass.
	total := 0.0
	for x := 0; x < 24; x++ {
		for y := 0; y < 24; y++ {
			total += g.At([]int{x, y})
		}
	}
	fmt.Printf("mass conserved: %.1f\n", total)
	// Output:
	// mass conserved: 576.0
}

// SchemeByName resolves CLI-style names.
func ExampleSchemeByName() {
	s, _ := tessellate.SchemeByName("oblivious")
	fmt.Println(s, "==", tessellate.Oblivious)
	// Output:
	// oblivious == oblivious
}
