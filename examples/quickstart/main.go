// Quickstart: solve the 2D heat equation with the tessellation scheme
// and confirm it produces the identical field to the naive solver,
// faster. This is the minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"tessellate"
)

func main() {
	const (
		n     = 768
		steps = 300
	)

	// A hot disc in the centre of a cold plate, cold boundary.
	build := func() *tessellate.Grid2D {
		g := tessellate.NewGrid2D(n, n, 1, 1)
		g.Fill(func(x, y int) float64 {
			dx, dy := float64(x-n/2), float64(y-n/2)
			if math.Sqrt(dx*dx+dy*dy) < n/8 {
				return 100
			}
			return 0
		})
		g.SetBoundary(0)
		return g
	}

	eng := tessellate.NewEngine(0)
	defer eng.Close()

	naive := build()
	start := time.Now()
	if err := eng.Run2D(naive, tessellate.Heat2D, steps, tessellate.Options{Scheme: tessellate.Naive}); err != nil {
		log.Fatal(err)
	}
	naiveTime := time.Since(start)

	tess := build()
	start = time.Now()
	if err := eng.Run2D(tess, tessellate.Heat2D, steps, tessellate.Options{}); err != nil {
		log.Fatal(err)
	}
	tessTime := time.Since(start)

	// Same physics, bit for bit.
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			if naive.At(x, y) != tess.At(x, y) {
				log.Fatalf("mismatch at (%d,%d): %v vs %v", x, y, naive.At(x, y), tess.At(x, y))
			}
		}
	}

	fmt.Printf("2D heat equation, %dx%d grid, %d steps, %d workers\n", n, n, steps, eng.Threads())
	fmt.Printf("  naive:        %8.1f ms\n", naiveTime.Seconds()*1e3)
	fmt.Printf("  tessellation: %8.1f ms  (%.2fx)\n", tessTime.Seconds()*1e3, naiveTime.Seconds()/tessTime.Seconds())
	fmt.Printf("  outputs bitwise identical: true\n")
	fmt.Printf("  centre temperature after diffusion: %.3f\n", tess.At(n/2, n/2))
}
