// Highorder: the paper's §3.6 extensions through the public API —
// a high-order (order-2) 1D stencil driven by slope-2 tessellation
// (equivalent to the paper's supernode construction), and a 4D stencil
// run by the formula-driven n-dimensional executor, beyond what the
// specialised 1D/2D/3D paths cover.
package main

import (
	"fmt"
	"log"
	"math"

	"tessellate"
)

func main() {
	eng := tessellate.NewEngine(0)
	defer eng.Close()

	// 1) Order-2 star stencil in 1D (the paper's 1d5p benchmark): the
	// tessellation handles order m by scaling every tile slope by m —
	// the supernode reduction of §3.6 in closed form.
	const n1, steps1 = 4096, 64
	g1 := tessellate.NewGrid1D(n1, 2)
	g1.Fill(func(x int) float64 { return math.Sin(float64(x) / 50) })
	g1.SetBoundary(0)
	ref := g1.Clone()
	if err := eng.Run1D(g1, tessellate.P1D5, steps1, tessellate.Options{TimeTile: 8, Block: []int{64}}); err != nil {
		log.Fatal(err)
	}
	if err := eng.Run1D(ref, tessellate.P1D5, steps1, tessellate.Options{Scheme: tessellate.Naive}); err != nil {
		log.Fatal(err)
	}
	for x := 0; x < n1; x++ {
		if g1.At(x) != ref.At(x) {
			log.Fatalf("1d5p mismatch at %d", x)
		}
	}
	fmt.Printf("1D order-2 stencil (1d5p): %d points x %d steps, tessellated == naive: true\n", n1, steps1)

	// 2) A 4D order-1 star stencil: d+1 = 5 stages per phase, blocks
	// glued along up to 3 of 4 dimensions. No specialised executor
	// exists for 4D; the formula-driven one handles any rank.
	dims := []int{12, 12, 12, 12}
	halo := []int{1, 1, 1, 1}
	star := tessellate.NewStar(4, 1)
	g4 := tessellate.NewNDGrid(dims, halo)
	g4.Fill(func(c []int) float64 {
		return float64(c[0] + 2*c[1] + 3*c[2] + 4*c[3])
	})
	if err := eng.RunND(g4, star, 6, tessellate.Options{TimeTile: 2, Block: []int{4, 4, 4, 4}}); err != nil {
		log.Fatal(err)
	}
	centre := g4.At([]int{6, 6, 6, 6})
	fmt.Printf("4D star stencil: %v grid advanced 6 steps via 5-stage phases; centre value %.4f\n", dims, centre)
	fmt.Println("tessellation applies unchanged to any dimension (paper §3, Table 1)")
}
