// Distributed: the §4.1 capability — tessellation across
// distributed-memory ranks. Four ranks split a 2D heat problem into
// slabs, exchange block-boundary strips d times per time tile (instead
// of every step, as halo exchange for an untiled solver must), and
// produce a result bitwise identical to the single-process run.
//
// Ranks here live in one process connected by channels; the identical
// Rank code runs over the TCP transport for real clusters (see
// internal/dist).
package main

import (
	"fmt"
	"log"
	"sync"

	"tessellate"
	"tessellate/internal/core"
	"tessellate/internal/dist"
	"tessellate/internal/grid"
)

const (
	nx, ny = 1024, 512
	steps  = 96
	nranks = 4
)

func main() {
	cfg := core.Config{
		N:      []int{nx, ny},
		Slopes: []int{1, 1},
		BT:     16,
		Big:    []int{64, 128},
		Merge:  true,
	}

	initial := grid.NewGrid2D(nx, ny, 1, 1)
	initial.Fill(func(x, y int) float64 {
		if (x/64+y/64)%2 == 0 {
			return 100
		}
		return 0
	})
	initial.SetBoundary(0)

	// Single-process reference.
	ref := initial.Clone()
	eng := tessellate.NewEngine(0)
	defer eng.Close()
	if err := eng.Run2D(ref, tessellate.Heat2D, steps, tessellate.Options{Scheme: tessellate.Naive}); err != nil {
		log.Fatal(err)
	}

	// Distributed run.
	transports := dist.LocalCluster(nranks)
	ranks := make([]*dist.Rank, nranks)
	for i := range ranks {
		r, err := dist.NewRank(i, nranks, transports[i], &cfg, tessellate.Heat2D, 1)
		if err != nil {
			log.Fatal(err)
		}
		defer r.Close()
		if err := r.Scatter(initial); err != nil {
			log.Fatal(err)
		}
		ranks[i] = r
	}
	var wg sync.WaitGroup
	for i := range ranks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := ranks[i].Run(steps); err != nil {
				log.Fatal(err)
			}
		}(i)
	}
	wg.Wait()

	// Gather and compare.
	got := grid.NewGrid2D(nx, ny, 1, 1)
	got.Step = steps
	for _, r := range ranks {
		r.Territory(got)
	}
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			if got.At(x, y) != ref.At(x, y) {
				log.Fatalf("mismatch at (%d,%d)", x, y)
			}
		}
	}

	phases := (steps + cfg.BT - 1) / cfg.BT
	fmt.Printf("distributed 2D heat: %dx%d grid, %d steps, %d ranks\n", nx, ny, steps, nranks)
	fmt.Printf("  result bitwise identical to single-process run: true\n")
	for i, r := range ranks {
		p := r.Partition()
		fmt.Printf("  rank %d: x=[%d,%d), %d messages, %.2f MB sent\n",
			i, p.X0, p.X1, r.MessagesSent, float64(r.FloatsSent)*8/1e6)
	}
	fmt.Printf("  communication plan: %d exchanges per rank pair over %d phases (d=2 per time tile of %d steps)\n",
		2*phases+1, phases, cfg.BT)
	fmt.Printf("  an untiled halo-exchange solver would need %d exchanges (one per step)\n", steps)
}
