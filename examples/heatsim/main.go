// Heatsim: a 3D heat-conduction simulation (the paper's Heat-3D
// benchmark as an application) — a hot plate at one face of a brick,
// cold everywhere else. It runs the same physics under every available
// scheme, reports wall-clock times, demands bitwise-identical outputs,
// and prints an ASCII cross-section of the final temperature field.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"tessellate"
)

const (
	nx, ny, nz = 96, 96, 96
	steps      = 120
)

func build() *tessellate.Grid3D {
	g := tessellate.NewGrid3D(nx, ny, nz, 1, 1, 1)
	g.Fill(func(x, y, z int) float64 {
		if x < 4 {
			return 100 // hot plate near the x=0 face
		}
		return 0
	})
	g.SetBoundary(0)
	return g
}

func main() {
	eng := tessellate.NewEngine(0)
	defer eng.Close()

	schemes := []tessellate.Scheme{
		tessellate.Naive, tessellate.SpaceTiled, tessellate.Skewed,
		tessellate.Diamond, tessellate.Oblivious, tessellate.MWD, tessellate.D35, tessellate.Tessellation,
	}

	fmt.Printf("3D heat conduction, %dx%dx%d brick, %d steps, %d workers\n\n", nx, ny, nz, steps, eng.Threads())
	var ref *tessellate.Grid3D
	for _, sc := range schemes {
		g := build()
		start := time.Now()
		err := eng.Run3D(g, tessellate.Heat3D, steps, tessellate.Options{Scheme: sc, TimeTile: 8, Block: []int{24, 32, 96}})
		if err != nil {
			log.Fatalf("%v: %v", sc, err)
		}
		elapsed := time.Since(start)
		status := "reference"
		if ref == nil {
			ref = g
		} else {
			if !identical(g, ref) {
				log.Fatalf("%v diverged from reference", sc)
			}
			status = "identical to reference"
		}
		fmt.Printf("  %-13s %8.1f ms   %s\n", sc.String()+":", elapsed.Seconds()*1e3, status)
	}

	fmt.Printf("\ntemperature cross-section at y=%d (x down, z right, 0..9 scale):\n", ny/2)
	fmt.Println(crossSection(ref))
}

func identical(a, b *tessellate.Grid3D) bool {
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			for z := 0; z < nz; z++ {
				if a.At(x, y, z) != b.At(x, y, z) {
					return false
				}
			}
		}
	}
	return true
}

func crossSection(g *tessellate.Grid3D) string {
	const glyphs = " .:-=+*#%@"
	var b strings.Builder
	for x := 0; x < nx; x += 4 {
		for z := 0; z < nz; z += 2 {
			t := g.At(x, ny/2, z)
			idx := int(t / 100 * float64(len(glyphs)-1))
			if idx > len(glyphs)-1 {
				idx = len(glyphs) - 1
			}
			if idx < 0 {
				idx = 0
			}
			b.WriteByte(glyphs[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
