// Game of Life driven by the tessellation scheduler: the life rule is a
// 2D 9-point box "stencil" (one of the paper's seven benchmarks), so
// temporal tiling applies to it unchanged. A glider cruises across the
// board in batches of tiled generations; the example asserts it arrives
// where untiled evolution puts it.
package main

import (
	"fmt"
	"log"
	"strings"

	"tessellate"
)

const (
	w, h        = 40, 24
	generations = 48 // 12 batches of 4 tiled generations
)

func main() {
	board := tessellate.NewGrid2D(h, w, 1, 1)
	// A glider heading south-east plus a blinker that stays put.
	for _, p := range [][2]int{{1, 2}, {2, 3}, {3, 1}, {3, 2}, {3, 3}} {
		board.Set(p[0], p[1], 1)
	}
	for _, p := range [][2]int{{10, 20}, {11, 20}, {12, 20}} {
		board.Set(p[0], p[1], 1)
	}
	board.SetBoundary(0) // dead frontier

	ref := board.Clone()

	eng := tessellate.NewEngine(0)
	defer eng.Close()

	fmt.Println("generation 0:")
	fmt.Println(render(board))
	for batch := 0; batch < generations/4; batch++ {
		// Four generations per tessellation phase (TimeTile=4): one
		// pass over the board instead of four.
		if err := eng.Run2D(board, tessellate.Life, 4, tessellate.Options{TimeTile: 2, Block: []int{8, 8}}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("generation %d (tessellation, %d tiled batches):\n", generations, generations/4)
	fmt.Println(render(board))

	if err := eng.Run2D(ref, tessellate.Life, generations, tessellate.Options{Scheme: tessellate.Naive}); err != nil {
		log.Fatal(err)
	}
	for x := 0; x < h; x++ {
		for y := 0; y < w; y++ {
			if board.At(x, y) != ref.At(x, y) {
				log.Fatalf("tessellated life diverged from naive at (%d,%d)", x, y)
			}
		}
	}
	fmt.Println("tessellated evolution matches naive generation-by-generation evolution: true")

	// The glider translates one cell diagonally every 4 generations.
	want := [2]int{1 + generations/4, 2 + generations/4}
	if board.At(want[0], want[1]) != 1 {
		log.Fatalf("glider not found near %v", want)
	}
	fmt.Printf("glider advanced %d cells diagonally, as expected\n", generations/4)

	// Masked variant: freeze a dead wall across the board and send the
	// same glider at it. The frozen cells never flip (they are not part
	// of the active domain), so the glider perishes against the wall —
	// and the masked tessellated run still matches the masked naive
	// reference bitwise.
	m := tessellate.NewMask([]int{h, w})
	for x := 0; x < h; x++ {
		m.Set(false, x, w/2)
	}
	m.Finalize()
	walled := tessellate.NewGrid2D(h, w, 1, 1)
	for _, p := range [][2]int{{1, 2}, {2, 3}, {3, 1}, {3, 2}, {3, 3}} {
		walled.Set(p[0], p[1], 1)
	}
	walled.SetBoundary(0)
	wref := walled.Clone()
	if err := eng.RunMasked2D(walled, tessellate.Life, generations, m, tessellate.Options{TimeTile: 2, Block: []int{8, 8}}); err != nil {
		log.Fatal(err)
	}
	if err := eng.RunMasked2D(wref, tessellate.Life, generations, m, tessellate.Options{Scheme: tessellate.Naive}); err != nil {
		log.Fatal(err)
	}
	for x := 0; x < h; x++ {
		for y := 0; y < w; y++ {
			if walled.At(x, y) != wref.At(x, y) {
				log.Fatalf("masked tessellated life diverged from naive at (%d,%d)", x, y)
			}
		}
	}
	alive := 0
	for x := 0; x < h; x++ {
		for y := 0; y < w; y++ {
			if walled.At(x, y) == 1 {
				alive++
			}
		}
	}
	fmt.Printf("masked run matches naive; %d cells alive after the glider met the wall\n", alive)
}

func render(g *tessellate.Grid2D) string {
	var b strings.Builder
	for x := 0; x < h; x++ {
		for y := 0; y < w; y++ {
			if g.At(x, y) == 1 {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
