// FDTD-style wave propagation in a masked cavity: the scalar wave
// equation's leapfrog update u^{t+1} = 2u + c^2 dt^2 lap(u) - u^{t-1}
// runs as a two-stage pipeline (a stencil stage plus a blend reading
// the previous time level through PrevState), and a mask freezes a
// rigid obstacle in the cavity's centre so the pulse diffracts around
// it. The example asserts the tessellated masked run reproduces the
// masked naive reference bitwise and that the obstacle never moves.
package main

import (
	"fmt"
	"log"
	"math"

	"tessellate"
)

const (
	nx, ny = 120, 84
	steps  = 96
	c2dt2  = 0.4 // (c*dt/dx)^2, inside the 2D CFL bound of 0.5
)

func main() {
	// Stage 1 computes w = 2u + c^2 dt^2 lap(u); the final blend
	// subtracts u^{t-1}, completing the leapfrog step. With double
	// buffering the previous level is exactly the destination buffer's
	// pre-write contents, so the stepper needs no extra state grid.
	wave := &tessellate.Stencil{
		Name: "wave-2d", Dims: 2, Slopes: []int{1, 1}, Points: 5, Flops: 7,
		K2: func(dst, src []float64, base, n, sy int) {
			for i := base; i < base+n; i++ {
				lap := src[i-1] + src[i+1] + src[i-sy] + src[i+sy] - 4*src[i]
				dst[i] = 2*src[i] + c2dt2*lap
			}
		},
	}
	p := &tessellate.Pipeline{Name: "leapfrog-wave", Stages: []tessellate.Stage{
		{Spec: wave, In: 0},
		{A: 1, In: 1, B: -1, InB: tessellate.PrevState},
	}}

	// The obstacle mask freezes a centred box; its cells are seeded 0
	// and stay 0 — a rigid reflector.
	m, err := tessellate.NamedMask("obstacle", []int{nx, ny})
	if err != nil {
		log.Fatal(err)
	}

	g := tessellate.NewGrid2D(nx, ny, 1, 1)
	// A Gaussian pulse left of the obstacle, at rest (u^{-1} = u^0:
	// both parity buffers hold the seed, so the pulse starts with zero
	// velocity and splits symmetrically).
	g.Fill(func(x, y int) float64 {
		if !m.Active(x, y) {
			return 0 // the rigid obstacle holds u = 0
		}
		dx, dy := float64(x-nx/2), float64(y-ny/6)
		return math.Exp(-(dx*dx + dy*dy) / 18)
	})
	g.SetBoundary(0) // open-ended cavity walls absorb nothing; they hold u = 0

	eng := tessellate.NewEngine(0)
	defer eng.Close()

	ref := g.Clone()
	if err := eng.RunPipeline2D(ref, p, steps, m, tessellate.Options{Scheme: tessellate.Naive}); err != nil {
		log.Fatal(err)
	}
	if err := eng.RunPipeline2D(g, p, steps, m, tessellate.Options{TimeTile: 4}); err != nil {
		log.Fatal(err)
	}
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			if g.At(x, y) != ref.At(x, y) {
				log.Fatalf("tessellated masked wave diverged from naive at (%d,%d): %v != %v",
					x, y, g.At(x, y), ref.At(x, y))
			}
		}
	}
	fmt.Printf("masked leapfrog pipeline matches the naive reference bitwise after %d steps\n", steps)

	// The obstacle is rigid: every inactive cell still holds its seed.
	moved := 0
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			if !m.Active(x, y) && g.At(x, y) != 0 {
				moved++
			}
		}
	}
	if moved != 0 {
		log.Fatalf("%d obstacle cells changed value", moved)
	}
	fmt.Printf("obstacle intact: %d frozen cells unchanged\n", nx*ny-m.ActiveCount())

	// After steps > distance-to-obstacle the pulse has reached and
	// passed the obstacle's y-band; some energy must be beyond it.
	var beyond float64
	for x := 0; x < nx; x++ {
		for y := 5 * ny / 8; y < ny; y++ {
			beyond += g.At(x, y) * g.At(x, y)
		}
	}
	fmt.Printf("energy diffracted past the obstacle: %.6f\n", beyond)
	if beyond == 0 {
		log.Fatal("no energy made it past the obstacle")
	}
}
