// Reaction-diffusion (a Gray-Scott-style activator equation with a
// frozen inhibitor field) driven by the tessellation scheduler as a
// two-stage pipeline: stage 1 diffuses u with the heat-2d kernel,
// stage 2 applies the pointwise reaction -u*v^2 + F*(1-u) against a
// frozen v field the kernel closure captures. One block visit executes
// both stages fused, and the example asserts the tiled run reproduces
// the barriered naive reference bitwise.
package main

import (
	"fmt"
	"log"
	"math"

	"tessellate"
)

const (
	n     = 96
	steps = 48
	dt    = 0.6
	feed  = 0.035
)

func main() {
	g := tessellate.NewGrid2D(n, n, 1, 1)
	// u starts saturated with a depleted blob in the centre.
	g.Fill(func(x, y int) float64 {
		if d2(x, y, n/2, n/2) < 12*12 {
			return 0.25
		}
		return 1
	})
	g.SetBoundary(1)

	// The frozen inhibitor v, stored with the grid buffer's layout so
	// the reaction kernel indexes it with the same flat index it writes:
	// a high-v ring around the centre where the reaction burns u.
	vsq := make([]float64, len(g.Buf[0]))
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			v := 0.2
			if r := d2(x, y, n/2, n/2); r > 8*8 && r < 20*20 {
				v = 0.8
			}
			vsq[g.Idx(x, y)] = v * v
		}
	}
	react := &tessellate.Stencil{
		Name: "gray-scott-react", Dims: 2, Slopes: []int{0, 0}, Points: 1, Flops: 6,
		K2: func(dst, src []float64, base, n, sy int) {
			for i := base; i < base+n; i++ {
				u := src[i]
				dst[i] = u + dt*(-u*vsq[i]+feed*(1-u))
			}
		},
	}
	p := &tessellate.Pipeline{Name: "reaction-diffusion", Stages: []tessellate.Stage{
		{Spec: tessellate.Heat2D, In: 0}, // u* = diffuse(u)
		{Spec: react, In: 1},             // u' = u* + dt*(-u* v^2 + F(1-u*))
	}}

	eng := tessellate.NewEngine(0)
	defer eng.Close()

	ref := g.Clone()
	if err := eng.RunPipeline2D(ref, p, steps, nil, tessellate.Options{Scheme: tessellate.Naive}); err != nil {
		log.Fatal(err)
	}
	if err := eng.RunPipeline2D(g, p, steps, nil, tessellate.Options{TimeTile: 4}); err != nil {
		log.Fatal(err)
	}
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			if g.At(x, y) != ref.At(x, y) {
				log.Fatalf("tessellated pipeline diverged from naive at (%d,%d): %v != %v",
					x, y, g.At(x, y), ref.At(x, y))
			}
		}
	}
	fmt.Printf("fused 2-stage pipeline matches the barriered naive reference bitwise after %d steps\n", steps)

	// The ring's high inhibitor concentration should have burned a
	// visible trough into u.
	ring, outside := g.At(n/2+14, n/2), g.At(4, 4)
	fmt.Printf("u on the inhibitor ring: %.3f, far field: %.3f\n", ring, outside)
	if !(ring < outside) {
		log.Fatal("reaction left no trough on the inhibitor ring")
	}
	fmt.Println(renderBand(g))
}

func d2(x, y, cx, cy int) int {
	dx, dy := x-cx, y-cy
	return dx*dx + dy*dy
}

// renderBand draws the centre row as a coarse concentration profile.
func renderBand(g *tessellate.Grid2D) string {
	glyphs := []byte(" .:-=+*#%@")
	out := make([]byte, 0, n+16)
	out = append(out, "u profile: "...)
	for y := 0; y < n; y += 2 {
		u := g.At(n/2, y)
		i := int(math.Min(float64(len(glyphs)-1), math.Max(0, u*float64(len(glyphs)))))
		out = append(out, glyphs[i])
	}
	return string(out)
}
