package tessellate

import (
	"math/rand"
	"testing"

	"tessellate/internal/core"
	"tessellate/internal/stencil"
	"tessellate/internal/verify"
)

// Differential suite for per-stage dispatch coarsening: on every
// shipped kernel — the seven Table 4 stencils plus both
// variable-coefficient kernels — and on both the row and fused-block
// dispatch paths, runs with no coarsening, a global factor and a
// per-stage vector must produce bitwise-identical fields. Coarsening
// only regroups how blocks are handed to workers; the schedule's
// update boxes are untouched.

// coarsenVectors are the coarsening variants every kernel is checked
// under ("none" is the reference).
var coarsenVectors = []struct {
	name string
	per  []int
}{
	{"global4", []int{4}},
	{"global-max", []int{MaxCoarsenFactor}},
	{"per-stage", []int{3, 2, 5, 2}}, // truncated to the kernel's d+1 slots
}

// coarsenVectorFor trims a variant vector to the d+1 slots a
// d-dimensional config accepts.
func coarsenVectorFor(per []int, dims int) []int {
	if len(per) > dims+1 {
		return per[:dims+1]
	}
	return per
}

func coarsenDiffOptions(dims int) Options {
	switch dims {
	case 1:
		return Options{Scheme: Tessellation, TimeTile: 2, Block: []int{12}}
	case 2:
		return Options{Scheme: Tessellation, TimeTile: 3, Block: []int{12, 16}}
	default:
		return Options{Scheme: Tessellation, TimeTile: 2, Block: []int{8, 6, 8}}
	}
}

func TestCoarseningBitwiseIdenticalAllKernels(t *testing.T) {
	eng := NewEngine(3)
	defer eng.Close()
	defer core.SetBlockKernels(true)

	specs := append([]*Stencil(nil), stencil.All...)
	const nx1, nx2, ny2, nx3, ny3, nz3 = 89, 40, 36, 18, 15, 16

	// Variable-coefficient kernels need a padded coefficient field.
	kg2 := NewGrid2D(nx2, ny2, 1, 1)
	kappa2 := make([]float64, len(kg2.Buf[0]))
	kg3 := NewGrid3D(nx3, ny3, nz3, 1, 1, 1)
	kappa3 := make([]float64, len(kg3.Buf[0]))
	rng := rand.New(rand.NewSource(17))
	for i := range kappa2 {
		kappa2[i] = 0.05 + rng.Float64()
	}
	for i := range kappa3 {
		kappa3[i] = 0.05 + rng.Float64()
	}
	specs = append(specs, NewVarCoef2D(kappa2), NewVarCoef3D(kappa3))

	for _, spec := range specs {
		for _, blockPath := range []bool{false, true} {
			path := "row"
			if blockPath {
				path = "block"
			}
			core.SetBlockKernels(blockPath)
			opt := coarsenDiffOptions(spec.Dims)
			steps := 4*opt.TimeTile + 1

			switch spec.Dims {
			case 1:
				base := NewGrid1D(nx1, spec.MaxSlope())
				fillDiff1D(base, spec)
				ref := base.Clone()
				if err := eng.Run1D(ref, spec, steps, opt); err != nil {
					t.Fatalf("%s/%s: %v", spec.Name, path, err)
				}
				for _, v := range coarsenVectors {
					g := base.Clone()
					o := opt
					o.CoarsenPerStage = coarsenVectorFor(v.per, spec.Dims)
					if err := eng.Run1D(g, spec, steps, o); err != nil {
						t.Fatalf("%s/%s/%s: %v", spec.Name, path, v.name, err)
					}
					if r := verify.Grids1D(g, ref); !r.Equal {
						t.Fatalf("%s/%s/%s: %v", spec.Name, path, v.name, r.Error("coarsened"))
					}
				}
			case 2:
				base := NewGrid2D(nx2, ny2, 1, 1)
				fillDiff2D(base, spec)
				ref := base.Clone()
				if err := eng.Run2D(ref, spec, steps, opt); err != nil {
					t.Fatalf("%s/%s: %v", spec.Name, path, err)
				}
				for _, v := range coarsenVectors {
					g := base.Clone()
					o := opt
					o.CoarsenPerStage = coarsenVectorFor(v.per, spec.Dims)
					if err := eng.Run2D(g, spec, steps, o); err != nil {
						t.Fatalf("%s/%s/%s: %v", spec.Name, path, v.name, err)
					}
					if r := verify.Grids2D(g, ref); !r.Equal {
						t.Fatalf("%s/%s/%s: %v", spec.Name, path, v.name, r.Error("coarsened"))
					}
				}
			case 3:
				base := NewGrid3D(nx3, ny3, nz3, 1, 1, 1)
				fillDiff3D(base, spec)
				ref := base.Clone()
				if err := eng.Run3D(ref, spec, steps, opt); err != nil {
					t.Fatalf("%s/%s: %v", spec.Name, path, err)
				}
				for _, v := range coarsenVectors {
					g := base.Clone()
					o := opt
					o.CoarsenPerStage = coarsenVectorFor(v.per, spec.Dims)
					if err := eng.Run3D(g, spec, steps, o); err != nil {
						t.Fatalf("%s/%s/%s: %v", spec.Name, path, v.name, err)
					}
					if r := verify.Grids3D(g, ref); !r.Equal {
						t.Fatalf("%s/%s/%s: %v", spec.Name, path, v.name, r.Error("coarsened"))
					}
				}
			}
		}
	}
}

func fillDiff1D(g *Grid1D, spec *Stencil) {
	rng := rand.New(rand.NewSource(int64(len(spec.Name))))
	g.Fill(func(x int) float64 { return rng.Float64() })
	g.SetBoundary(0.5)
}

func fillDiff2D(g *Grid2D, spec *Stencil) {
	rng := rand.New(rand.NewSource(int64(len(spec.Name))))
	if spec.Name == stencil.Life.Name {
		g.Fill(func(x, y int) float64 { return float64(rng.Intn(2)) })
		g.SetBoundary(0)
		return
	}
	g.Fill(func(x, y int) float64 { return rng.Float64() })
	g.SetBoundary(0.25)
}

func fillDiff3D(g *Grid3D, spec *Stencil) {
	rng := rand.New(rand.NewSource(int64(len(spec.Name))))
	g.Fill(func(x, y, z int) float64 { return rng.Float64() })
	g.SetBoundary(0.125)
}

// scriptedCoarsenRetuner re-tiles at every phase boundary, walking a
// fixed sequence of coarsening vectors while keeping the tile shape.
type scriptedCoarsenRetuner struct {
	seq     [][]int
	i       int
	retunes int
}

func (r *scriptedCoarsenRetuner) Phases() int { return 1 }

func (r *scriptedCoarsenRetuner) Retune(b PhaseBoundary) (Options, bool) {
	if r.i >= len(r.seq) {
		return Options{}, false
	}
	next := b.Options
	next.CoarsenPerStage = r.seq[r.i]
	r.i++
	r.retunes++
	return next, true
}

// A run whose coarsening vector changes at every phase boundary must
// be bitwise identical to a fixed uncoarsened run: re-grouping
// dispatch mid-flight is invisible in the numerics.
func TestMidRunCoarseningRetuneBitwiseIdentical(t *testing.T) {
	const nx, ny, steps = 52, 44, 15
	eng := NewEngine(3)
	defer eng.Close()
	opt := Options{Scheme: Tessellation, TimeTile: 3, Block: []int{12, 16}}

	base := NewGrid2D(nx, ny, 1, 1)
	fillDiff2D(base, Heat2D)
	ref := base.Clone()
	if err := eng.Run2D(ref, Heat2D, steps, opt); err != nil {
		t.Fatal(err)
	}

	rt := &scriptedCoarsenRetuner{seq: [][]int{{8}, {1, 4, 2}, {64}, nil}}
	g := base.Clone()
	if err := eng.RunAdaptive2D(g, Heat2D, steps, opt, rt); err != nil {
		t.Fatal(err)
	}
	if rt.retunes == 0 {
		t.Fatal("scripted retuner was never consulted")
	}
	if r := verify.Grids2D(g, ref); !r.Equal {
		t.Fatalf("mid-run coarsening re-tune changed the numerics: %v", r.Error("adaptive"))
	}

	// The boundary must report the coarsening the segment ran with:
	// after the first re-tile to {8}, the next boundary sees it.
	probe := &coarsenProbeRetuner{}
	g2 := base.Clone()
	if err := eng.RunAdaptive2D(g2, Heat2D, steps, Options{
		Scheme: Tessellation, TimeTile: 3, Block: []int{12, 16}, CoarsenPerStage: []int{5, 2},
	}, probe); err != nil {
		t.Fatal(err)
	}
	if len(probe.seen) == 0 {
		t.Fatal("probe retuner was never consulted")
	}
	for _, per := range probe.seen {
		if len(per) != 2 || per[0] != 5 || per[1] != 2 {
			t.Fatalf("boundary reported CoarsenPerStage %v, want [5 2]", per)
		}
	}
	if r := verify.Grids2D(g2, ref); !r.Equal {
		t.Fatalf("coarsened adaptive run changed the numerics: %v", r.Error("adaptive"))
	}
}

// coarsenProbeRetuner records the coarsening vector each boundary
// reports without ever re-tiling.
type coarsenProbeRetuner struct{ seen [][]int }

func (r *coarsenProbeRetuner) Phases() int { return 1 }

func (r *coarsenProbeRetuner) Retune(b PhaseBoundary) (Options, bool) {
	r.seen = append(r.seen, b.Options.CoarsenPerStage)
	return Options{}, false
}
