module tessellate

go 1.22
